// Package linalg implements the exact integer/rational linear algebra the
// paper's Section 4 proofs rely on: matrix rank, kernel bases, and
// matrix-vector products over the integers, all with arbitrary-precision
// arithmetic. Floating point is never used: Lemmas 2-4 are statements about
// integer matrices, and an approximate kernel would be unsound.
package linalg

import (
	"fmt"
	"math/big"
	"strings"
)

// Matrix is a dense rows x cols matrix of arbitrary-precision integers.
// The zero value is the 0x0 matrix; use NewMatrix or FromInts.
type Matrix struct {
	rows, cols int
	a          []*big.Int // row-major
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: negative dimension %dx%d", rows, cols)
	}
	a := make([]*big.Int, rows*cols)
	for i := range a {
		a[i] = new(big.Int)
	}
	return &Matrix{rows: rows, cols: cols, a: a}, nil
}

// FromInts builds a matrix from an int slice-of-slices. All rows must have
// the same length.
func FromInts(data [][]int) (*Matrix, error) {
	rows := len(data)
	cols := 0
	if rows > 0 {
		cols = len(data[0])
	}
	m, err := NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	for i, row := range data {
		if len(row) != cols {
			return nil, fmt.Errorf("linalg: ragged row %d: len %d, want %d", i, len(row), cols)
		}
		for j, v := range row {
			m.a[i*cols+j].SetInt64(int64(v))
		}
	}
	return m, nil
}

// MustFromInts is FromInts that panics on error; for fixtures and tests.
func MustFromInts(data [][]int) *Matrix {
	m, err := FromInts(data)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns a copy of the entry at (i, j).
func (m *Matrix) At(i, j int) *big.Int {
	return new(big.Int).Set(m.a[i*m.cols+j])
}

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v *big.Int) {
	m.a[i*m.cols+j].Set(v)
}

// SetInt64 assigns entry (i, j) from an int64.
func (m *Matrix) SetInt64(i, j int, v int64) {
	m.a[i*m.cols+j].SetInt64(v)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c, _ := NewMatrix(m.rows, m.cols)
	for i := range m.a {
		c.a[i].Set(m.a[i])
	}
	return c
}

// MulVec returns m*x. x must have length Cols.
func (m *Matrix) MulVec(x Vector) (Vector, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("linalg: MulVec length %d, want %d", len(x), m.cols)
	}
	out := NewVector(m.rows)
	t := new(big.Int)
	for i := 0; i < m.rows; i++ {
		acc := out[i]
		for j := 0; j < m.cols; j++ {
			e := m.a[i*m.cols+j]
			if e.Sign() == 0 || x[j].Sign() == 0 {
				continue
			}
			acc.Add(acc, t.Mul(e, x[j]))
		}
	}
	return out, nil
}

// String renders the matrix with one bracketed row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(m.a[i*m.cols+j].String())
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
