package linalg

// Fraction-free Gauss-Jordan elimination (Bareiss). The classical big.Rat
// elimination in eliminate.go spends most of its time normalizing rationals:
// every pivot step allocates fresh numerator/denominator pairs and runs a GCD
// per entry. The fraction-free scheme keeps every intermediate value integral
// by the Bareiss identity
//
//	a'[i][j] = (piv*a[i][j] - a[i][c]*a[r][j]) / prev
//
// where prev is the previous pivot (1 initially); every division is exact, and
// after the final pivot the working matrix equals d * RREF(m) for d = the last
// pivot. The hot path runs on native int64 with explicit overflow checks and
// spills to big.Int arithmetic only at the first operation that would
// overflow — the pivot step is double-buffered so the intact pre-step state
// can be promoted and the step redone exactly.
//
// The node-count systems this package serves have ±1/small-integer
// coefficients, so in practice whole solves complete in int64; the spill path
// exists for correctness, not speed, and is exercised directly by tests and
// the linalg-fastpath check oracle.

import (
	"math"
	"math/big"
	"math/bits"

	"anondyn/internal/obs"
)

// rrefFast computes the reduced row echelon form of m over the rationals via
// fraction-free Gauss-Jordan elimination. It returns the same entries/pivots
// as the retained big.Rat reference path (rrefReference), bit for bit.
func rrefFast(m *Matrix) ([][]*big.Rat, []int) {
	var (
		pivotCtr *obs.Counter
		peakBits *obs.Gauge
	)
	if col := obs.Global(); col != nil {
		pivotCtr = col.Counter(obs.LinalgPivots)
		peakBits = col.Gauge(obs.LinalgPeakBits)
	}
	rows, cols := m.rows, m.cols
	pivots := make([]int, 0, min(rows, cols))

	// Load the int64 image; any entry outside int64 forces big mode from the
	// start.
	inInt := true
	cur := make([]int64, rows*cols)
	for i, e := range m.a {
		if !e.IsInt64() {
			inInt = false
			break
		}
		cur[i] = e.Int64()
	}
	var (
		nxt     []int64 // post-step buffer for the double-buffered int64 path
		abig    []*big.Int
		prevBig *big.Int
	)
	if inInt {
		nxt = make([]int64, rows*cols)
	} else {
		abig = make([]*big.Int, rows*cols)
		for i, e := range m.a {
			abig[i] = new(big.Int).Set(e)
		}
		prevBig = big.NewInt(1)
	}
	prev := int64(1)

	r := 0
	for c := 0; c < cols && r < rows; c++ {
		if inInt {
			p := -1
			for i := r; i < rows; i++ {
				if cur[i*cols+c] != 0 {
					p = i
					break
				}
			}
			if p == -1 {
				continue
			}
			if p != r {
				swapRows64(cur, cols, p, r)
			}
			piv := cur[r*cols+c]
			if ffStep64(cur, nxt, rows, cols, r, c, piv, prev) {
				cur, nxt = nxt, cur
				prev = piv
			} else {
				// Overflow mid-step: cur still holds the exact pre-step
				// state (the swap is order-only). Promote it and redo the
				// step in big.Int arithmetic; all later pivots stay big.
				abig = make([]*big.Int, rows*cols)
				for i, v := range cur {
					abig[i] = big.NewInt(v)
				}
				prevBig = big.NewInt(prev)
				inInt = false
				piv := new(big.Int).Set(abig[r*cols+c])
				ffStepBig(abig, rows, cols, r, c, prevBig)
				prevBig = piv
			}
		} else {
			p := -1
			for i := r; i < rows; i++ {
				if abig[i*cols+c].Sign() != 0 {
					p = i
					break
				}
			}
			if p == -1 {
				continue
			}
			if p != r {
				for j := 0; j < cols; j++ {
					abig[p*cols+j], abig[r*cols+j] = abig[r*cols+j], abig[p*cols+j]
				}
			}
			piv := new(big.Int).Set(abig[r*cols+c])
			ffStepBig(abig, rows, cols, r, c, prevBig)
			prevBig = piv
		}
		pivotCtr.Inc()
		if peakBits != nil {
			// Track the widest entry in the pivot row — the coefficient
			// growth exact elimination is paying for.
			w := int64(0)
			for j := 0; j < cols; j++ {
				var b int64
				if inInt {
					b = int64(bits.Len64(abs64(cur[r*cols+j])))
				} else {
					b = int64(abig[r*cols+j].BitLen())
				}
				if b > w {
					w = b
				}
			}
			peakBits.SetMax(w)
		}
		pivots = append(pivots, c)
		r++
	}

	// The working matrix is d*RREF for d = the final prev; divide out.
	out := make([][]*big.Rat, rows)
	if inInt {
		d := big.NewInt(prev)
		n := new(big.Int)
		for i := 0; i < rows; i++ {
			out[i] = make([]*big.Rat, cols)
			for j := 0; j < cols; j++ {
				n.SetInt64(cur[i*cols+j])
				out[i][j] = new(big.Rat).SetFrac(n, d)
			}
		}
	} else {
		for i := 0; i < rows; i++ {
			out[i] = make([]*big.Rat, cols)
			for j := 0; j < cols; j++ {
				out[i][j] = new(big.Rat).SetFrac(abig[i*cols+j], prevBig)
			}
		}
	}
	return out, pivots
}

// ffStep64 applies one fraction-free Gauss-Jordan pivot step on int64,
// reading the pre-step state from cur and writing the post-step state to nxt
// (the pivot row is copied unchanged). It reports false at the first
// operation that would overflow int64, in which case nxt is garbage and cur
// is untouched.
func ffStep64(cur, nxt []int64, rows, cols, r, c int, piv, prev int64) bool {
	base := r * cols
	copy(nxt[base:base+cols], cur[base:base+cols])
	for i := 0; i < rows; i++ {
		if i == r {
			continue
		}
		ib := i * cols
		f := cur[ib+c]
		for j := 0; j < cols; j++ {
			t1, ok := mul64(piv, cur[ib+j])
			if !ok {
				return false
			}
			t2, ok := mul64(f, cur[base+j])
			if !ok {
				return false
			}
			t3, ok := sub64(t1, t2)
			if !ok {
				return false
			}
			if t3 == math.MinInt64 && prev == -1 {
				return false // |MinInt64/-1| does not fit
			}
			nxt[ib+j] = t3 / prev // exact by Bareiss' theorem
		}
	}
	return true
}

// ffStepBig applies the same pivot step on []*big.Int in place. The pivot row
// is read-only during the step, and the multiplier a[i][c] is snapshotted
// before row i is overwritten, so in-place update is safe.
func ffStepBig(a []*big.Int, rows, cols, r, c int, prev *big.Int) {
	base := r * cols
	piv := new(big.Int).Set(a[base+c])
	f := new(big.Int)
	t := new(big.Int)
	u := new(big.Int)
	for i := 0; i < rows; i++ {
		if i == r {
			continue
		}
		ib := i * cols
		f.Set(a[ib+c])
		for j := 0; j < cols; j++ {
			t.Mul(piv, a[ib+j])
			u.Mul(f, a[base+j])
			t.Sub(t, u)
			a[ib+j].Quo(t, prev) // exact by Bareiss' theorem
		}
	}
}

func swapRows64(a []int64, cols, p, r int) {
	pb, rb := p*cols, r*cols
	for j := 0; j < cols; j++ {
		a[pb+j], a[rb+j] = a[rb+j], a[pb+j]
	}
}

// mul64 returns a*b and whether it fit in int64.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// sub64 returns a-b and whether it fit in int64.
func sub64(a, b int64) (int64, bool) {
	if (b > 0 && a < math.MinInt64+b) || (b < 0 && a > math.MaxInt64+b) {
		return 0, false
	}
	return a - b, true
}

// abs64 returns |v| as a uint64 (correct for MinInt64, whose magnitude is
// 1<<63).
func abs64(v int64) uint64 {
	u := uint64(v)
	if v < 0 {
		u = -u
	}
	return u
}
