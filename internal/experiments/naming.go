package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/naming"
	"anondyn/internal/runtime"
)

// foldProc is an arbitrary deterministic protocol used as the naming
// attempt under test.
type foldProc struct {
	state string
}

func (p *foldProc) Send(r int) runtime.Message {
	return fmt.Sprintf("%d:%s", r, p.state)
}

func (p *foldProc) Receive(r int, msgs []runtime.Message) {
	acc := 0
	for _, m := range msgs {
		if s, ok := m.(string); ok {
			acc += len(s)
		}
	}
	p.state = fmt.Sprintf("%s+%d", p.state, acc)
}

// NamingImpossibility runs the twin witness: the adversary twins two
// nodes, and any deterministic protocol gives them identical transcripts —
// so no naming algorithm can assign them distinct identifiers.
func NamingImpossibility(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, extras := range []int{0, 2, 6} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, err := naming.RunTwinWitness(extras, 8, func(int) runtime.Process {
			return &foldProc{}
		})
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("extras=%d: twins identical=%v over %d rounds",
			extras, w.TranscriptsEqual, w.Rounds))
		if !w.TranscriptsEqual {
			bad = append(bad, fmt.Sprintf("extras=%d: twins distinguished", extras))
		}
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "N1", Name: "Naming impossibility: twinned nodes are inseparable",
		Params:   "twinned schedules with 0/2/6 extra nodes, 8 rounds",
		Paper:    "anonymity is persistent: twins receive identical inboxes under any deterministic protocol [15,16]",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
