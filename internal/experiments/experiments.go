// Package experiments regenerates every figure and theorem of the paper as
// a paper-claim-vs-measured-value row. cmd/experiments prints the table;
// EXPERIMENTS.md records a frozen copy; the repository benchmarks reuse the
// same entry points.
//
// The paper is a theory paper with no measurement tables, so "reproducing
// the evaluation" means executing its proofs: every row below either
// machine-checks a stated identity (kernels, dimensions, sums, the figures'
// captions) or measures the round complexity of an actual execution against
// the proved bound.
package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Row is one reproduced artifact.
type Row struct {
	// ID is the experiment identifier from DESIGN.md (F1..F4, L2..L4,
	// T1, T2, C1, D1, G1, A1, A2).
	ID string
	// Name describes the artifact.
	Name string
	// Params summarizes the workload parameters.
	Params string
	// Paper states the paper's claim.
	Paper string
	// Measured states what the reproduction observed.
	Measured string
	// Match reports whether the observation agrees with the claim.
	Match bool
}

// Runner is a named experiment entry point. Fn honors its context:
// cancellation between (and, for engine-backed experiments, within)
// workload sweeps aborts the experiment with the context's error.
type Runner struct {
	ID string
	Fn func(context.Context) ([]Row, error)
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{ID: "F1", Fn: Figure1},
		{ID: "F2", Fn: Figure2},
		{ID: "F3", Fn: Figure3},
		{ID: "F4", Fn: Figure4},
		{ID: "L2", Fn: Lemma2},
		{ID: "L3", Fn: Lemma3},
		{ID: "L4", Fn: Lemma4},
		{ID: "T1", Fn: Theorem1},
		{ID: "T2", Fn: Theorem2},
		{ID: "C1", Fn: Corollary1},
		{ID: "C2", Fn: Corollary1EndToEnd},
		{ID: "D1", Fn: Discussion},
		{ID: "G1", Fn: Gap},
		{ID: "A1", Fn: AblationK3},
		{ID: "A2", Fn: AblationStar},
		{ID: "A3", Fn: AblationAdversary},
		{ID: "B1", Fn: BaselineUpperBound},
		{ID: "B2", Fn: BaselineIDs},
		{ID: "B3", Fn: BaselineBandwidth},
		{ID: "S1", Fn: AverageCase},
		{ID: "E1", Fn: ExtensionAnonymousRelays},
		{ID: "S2", Fn: ConsciousVsUnconscious},
		{ID: "N1", Fn: NamingImpossibility},
	}
}

// RunAll executes every experiment and returns the concatenated rows.
// A canceled context aborts the suite between experiments; rows produced
// so far are discarded and the context's error is returned.
func RunAll(ctx context.Context) ([]Row, error) {
	var rows []Row
	for _, r := range All() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment suite canceled before %s: %w", r.ID, err)
		}
		got, err := r.Fn(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", r.ID, err)
		}
		rows = append(rows, got...)
	}
	return rows, nil
}

// FormatTable renders rows as a GitHub-flavored markdown table.
func FormatTable(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("| ID | Artifact | Parameters | Paper | Measured | Match |\n")
	sb.WriteString("|----|----------|------------|-------|----------|-------|\n")
	for _, r := range rows {
		mark := "yes"
		if !r.Match {
			mark = "NO"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			r.ID, r.Name, r.Params, r.Paper, r.Measured, mark)
	}
	return sb.String()
}

// AllMatch reports whether every row matched its claim.
func AllMatch(rows []Row) bool {
	for _, r := range rows {
		if !r.Match {
			return false
		}
	}
	return true
}
