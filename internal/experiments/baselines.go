package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/core"
	"anondyn/internal/counting"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// BaselineIDs measures the conclusion's comparison: on the very same
// worst-case 𝒢(PD)₂ topologies, a network whose nodes carry unique IDs
// counts within the dynamic-diameter order (flood + one silent round),
// while the anonymous network pays the Ω(log |V|) surcharge. The measured
// difference IS the cost of anonymity.
func BaselineIDs(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range []int{4, 13, 40, 121} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wc, err := core.WorstCaseAdversary(n)
		if err != nil {
			return nil, err
		}
		horizon := wc.Schedule.Horizon()
		d, err := dynet.DynamicDiameter(wc.Net, horizon, 200)
		if err != nil {
			return nil, err
		}
		idCount, idRounds, err := counting.IDCount(wc.Net, wc.Layout.Leader, 10*d+10, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		anon, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return nil, err
		}
		gap := anon.Rounds - idRounds
		series = append(series, fmt.Sprintf("n=%d: IDs %d rounds, anonymous %d (gap %d, D=%d)",
			n, idRounds, anon.Rounds, gap, d))
		if idCount != wc.Net.N() {
			bad = append(bad, fmt.Sprintf("n=%d: ID count %d, want %d", n, idCount, wc.Net.N()))
		}
		if idRounds > d+1 {
			bad = append(bad, fmt.Sprintf("n=%d: ID rounds %d exceed D+1=%d", n, idRounds, d+1))
		}
	}
	// The gap must grow along the sweep (the surcharge is Ω(log n)).
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "B2", Name: "Baseline: counting with unique IDs [9]",
		Params:   "same worst-case G(PD)_2 topologies, n ∈ {4,13,40,121}",
		Paper:    "with IDs, counting costs the order of the dynamic diameter — no anonymity surcharge",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// BaselineBandwidth measures the related-work [10] effect: with unique IDs
// but a one-ID-per-broadcast cap, counting time grows with n even at
// constant diameter (leader behind a star bottleneck), while unlimited
// bandwidth finishes in O(D). Bandwidth and anonymity are independent axes
// of hardness; the paper's bound isolates the anonymity axis by making
// bandwidth unlimited.
func BaselineBandwidth(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	prev := 0
	for _, n := range []int{8, 16, 32, 64} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		star, err := graph.Star(n, 1)
		if err != nil {
			return nil, err
		}
		net := dynet.NewStatic(star)
		_, unl, err := counting.IDCount(net, 0, 50, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		lim, err := counting.LimitedIDCount(net, 0, 1, 100*n, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("n=%d: unlimited %d, cap-1 %d", n, unl, lim.CompleteAt))
		if lim.CompleteAt == 0 {
			bad = append(bad, fmt.Sprintf("n=%d: capped run never completed", n))
			continue
		}
		if unl > 3 {
			bad = append(bad, fmt.Sprintf("n=%d: unlimited took %d rounds at diameter 2", n, unl))
		}
		if lim.CompleteAt <= prev {
			bad = append(bad, fmt.Sprintf("n=%d: capped time %d did not grow", n, lim.CompleteAt))
		}
		prev = lim.CompleteAt
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "B3", Name: "Baseline: limited bandwidth with IDs [10]",
		Params:   "leader-leaf star, cap 1 ID/broadcast, n ∈ {8,16,32,64}",
		Paper:    "with limited bandwidth counting grows with n even at D=2; the paper removes this axis",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// BaselineUpperBound contrasts the related-work counting style ([15]:
// degree-bounded upper bounds) with this paper's exact machinery: the
// baseline is sound (never below the true size) but loose, while the
// leader-state counter is exact.
func BaselineUpperBound(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, outer := range []int{5, 20, 80} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		net, _, v2 := restrictedPD2(2, outer)
		truth := 1 + 2 + len(v2)
		maxDeg := 0
		for r := 0; r < 8; r++ {
			g := net.Snapshot(r)
			for v := 0; v < net.N(); v++ {
				if d := g.Degree(graph.NodeID(v)); d > maxDeg {
					maxDeg = d
				}
			}
		}
		res, err := counting.UpperBoundCount(net, 0, maxDeg, 8, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("|V|=%d: bound %d (depth %d, d=%d)", truth, res.Bound, res.Depth, maxDeg))
		if res.Bound < truth {
			bad = append(bad, fmt.Sprintf("unsound at |V|=%d: bound %d", truth, res.Bound))
		}
		if res.Bound == truth {
			bad = append(bad, fmt.Sprintf("|V|=%d: expected looseness, got exact", truth))
		}
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "B1", Name: "Baseline: degree-bounded upper-bound counting [15]",
		Params:   "restricted G(PD)_2, |V2| ∈ {5,20,80}",
		Paper:    "with a known degree bound the leader computes an upper bound on |V| (not exact)",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
