package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/dynet"
)

// AblationAdversary demonstrates the model fact the paper's Section 3
// builds on: the dynamic diameter D is a property of the adversary, not of
// the snapshots. The flood-delaying adversary keeps every snapshot at
// diameter ≤ 3 yet stretches a flood to n−1 rounds.
func AblationAdversary(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range []int{4, 10, 25, 50} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fd, err := dynet.NewFloodDelaying(n, 0)
		if err != nil {
			return nil, err
		}
		ft, err := dynet.FloodTime(fd, 0, 0, 5*n)
		if err != nil {
			return nil, err
		}
		maxDiam := 0
		for r := 0; r < 2*n; r++ {
			if d := fd.Snapshot(r).Diameter(); d > maxDiam {
				maxDiam = d
			}
		}
		series = append(series, fmt.Sprintf("n=%d: flood %d, snapshot diam ≤ %d", n, ft, maxDiam))
		if ft != n-1 || maxDiam > 3 {
			bad = append(bad, fmt.Sprintf("n=%d: flood %d, diam %d", n, ft, maxDiam))
		}
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "A3", Name: "Ablation: D is adversary-controlled",
		Params:   "flood-delaying adversary, n ∈ {4,10,25,50}",
		Paper:    "the dynamic diameter reflects the adversary, not snapshot diameters",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
