package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/core"
	"anondyn/internal/sweep"
)

// theorem1Sizes is the sweep used by Theorem1 and Theorem2: a mix of
// kernel-threshold sizes (3^t-1)/2, their neighbors, and mid-range values.
func theorem1Sizes() []int {
	return []int{1, 2, 3, 4, 5, 12, 13, 14, 27, 39, 40, 41, 100, 121, 364, 1000, 3280}
}

// joinNonEmpty joins the non-empty entries of a per-index result slice,
// preserving sweep order regardless of the engine's scheduling.
func joinNonEmpty(parts []string) []string {
	var out []string
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Theorem1 sweeps network sizes, constructs the adversarial pair for each,
// verifies indistinguishability through exactly ⌊log₃(2n+1)⌋ completed
// rounds, and verifies that the extended pair diverges exactly one round
// later. The sizes run concurrently on the sweep engine's worker pool;
// findings are reassembled in sweep order, so the row is deterministic.
func Theorem1(ctx context.Context) ([]Row, error) {
	sizes := theorem1Sizes()
	failures := make([]string, len(sizes))
	err := sweep.ForEach(ctx, len(sizes), 0, func(ctx context.Context, i int) error {
		n := sizes[i]
		want := core.MaxIndistinguishableRounds(n)
		pair, err := core.WorstCasePair(n)
		if err != nil {
			return err
		}
		if pair.Rounds != want {
			failures[i] = fmt.Sprintf("n=%d sustained %d", n, pair.Rounds)
			return nil
		}
		if err := pair.Verify(); err != nil {
			failures[i] = fmt.Sprintf("n=%d verify: %v", n, err)
			return nil
		}
		ext, err := pair.Extend(2)
		if err != nil {
			return err
		}
		div, found := ext.FirstDivergence()
		if !found || div != want+1 {
			failures[i] = fmt.Sprintf("n=%d diverged at %d", n, div)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bad := joinNonEmpty(failures)
	measured := "all sizes: indistinguishable exactly ⌊log₃(2n+1)⌋ rounds, diverge next round"
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "T1", Name: "Theorem 1: indistinguishability horizon",
		Params:   fmt.Sprintf("n ∈ %v", theorem1Sizes()),
		Paper:    "no algorithm distinguishes |W|=n from n+1 before round ⌊log₃(2n+1)⌋",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// Theorem2 measures the leader-state counter on worst-case schedules: the
// observed termination round must equal the exact bound for every size —
// showing simultaneously that the bound is unbeatable and achievable. The
// per-size measurements run concurrently on the sweep engine.
func Theorem2(ctx context.Context) ([]Row, error) {
	var sizes []int
	for _, n := range theorem1Sizes() {
		if n > 1100 {
			// The counter enumerates 3^rounds leaf states; cap the sweep
			// where the dense walk stays sub-second.
			continue
		}
		sizes = append(sizes, n)
	}
	series := make([]string, len(sizes))
	failures := make([]string, len(sizes))
	err := sweep.ForEach(ctx, len(sizes), 0, func(ctx context.Context, i int) error {
		n := sizes[i]
		res, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return err
		}
		want := core.LowerBoundRounds(n)
		series[i] = fmt.Sprintf("n=%d:%d", n, res.Rounds)
		if res.Rounds != want || res.Count != n {
			failures[i] = fmt.Sprintf("n=%d got (%d rounds, count %d) want %d rounds", n, res.Rounds, res.Count, want)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bad := joinNonEmpty(failures)
	measured := "rounds(n) = ⌊log₃(2n+1)⌋+1 exactly: " + strings.Join(joinNonEmpty(series), " ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "T2", Name: "Theorem 2: counting on G(PD)_2 is Ω(log |V|)",
		Params:   "leader-state counter vs worst-case adversary",
		Paper:    "any counting algorithm needs Ω(log |V|) rounds",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// Corollary1 measures the chain composition: counting rounds equal
// delay + ⌊log₃(2n+1)⌋ + 1 = (D - 2) + Ω(log n) for every grid point. The
// (n, delay) grid runs concurrently on the sweep engine.
func Corollary1(ctx context.Context) ([]Row, error) {
	type point struct{ n, delay int }
	var grid []point
	for _, n := range []int{4, 13, 40, 121} {
		for _, delay := range []int{0, 1, 3, 8} {
			grid = append(grid, point{n, delay})
		}
	}
	series := make([]string, len(grid))
	failures := make([]string, len(grid))
	err := sweep.ForEach(ctx, len(grid), 0, func(ctx context.Context, i int) error {
		p := grid[i]
		res, err := core.ChainCountRounds(p.n, p.delay)
		if err != nil {
			return err
		}
		want := core.ChainLowerBoundRounds(p.n, p.delay)
		series[i] = fmt.Sprintf("(n=%d,delay=%d):%d", p.n, p.delay, res.Rounds)
		if res.Rounds != want || res.Count != p.n {
			failures[i] = fmt.Sprintf("n=%d delay=%d got %d want %d", p.n, p.delay, res.Rounds, want)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bad := joinNonEmpty(failures)
	measured := strings.Join(joinNonEmpty(series), " ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "C1", Name: "Corollary 1: D + Ω(log |V|) on chain compositions",
		Params:   "n ∈ {4,13,40,121} × delay ∈ {0,1,3,8}",
		Paper:    "counting needs at least D + Ω(log |V|) rounds",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
