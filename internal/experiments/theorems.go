package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/core"
)

// theorem1Sizes is the sweep used by Theorem1 and Theorem2: a mix of
// kernel-threshold sizes (3^t-1)/2, their neighbors, and mid-range values.
func theorem1Sizes() []int {
	return []int{1, 2, 3, 4, 5, 12, 13, 14, 27, 39, 40, 41, 100, 121, 364, 1000, 3280}
}

// Theorem1 sweeps network sizes, constructs the adversarial pair for each,
// verifies indistinguishability through exactly ⌊log₃(2n+1)⌋ completed
// rounds, and verifies that the extended pair diverges exactly one round
// later.
func Theorem1(ctx context.Context) ([]Row, error) {
	var bad []string
	for _, n := range theorem1Sizes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		want := core.MaxIndistinguishableRounds(n)
		pair, err := core.WorstCasePair(n)
		if err != nil {
			return nil, err
		}
		if pair.Rounds != want {
			bad = append(bad, fmt.Sprintf("n=%d sustained %d", n, pair.Rounds))
			continue
		}
		if err := pair.Verify(); err != nil {
			bad = append(bad, fmt.Sprintf("n=%d verify: %v", n, err))
			continue
		}
		ext, err := pair.Extend(2)
		if err != nil {
			return nil, err
		}
		div, found := ext.FirstDivergence()
		if !found || div != want+1 {
			bad = append(bad, fmt.Sprintf("n=%d diverged at %d", n, div))
		}
	}
	measured := "all sizes: indistinguishable exactly ⌊log₃(2n+1)⌋ rounds, diverge next round"
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "T1", Name: "Theorem 1: indistinguishability horizon",
		Params:   fmt.Sprintf("n ∈ %v", theorem1Sizes()),
		Paper:    "no algorithm distinguishes |W|=n from n+1 before round ⌊log₃(2n+1)⌋",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// Theorem2 measures the leader-state counter on worst-case schedules: the
// observed termination round must equal the exact bound for every size —
// showing simultaneously that the bound is unbeatable and achievable.
func Theorem2(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range theorem1Sizes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n > 1100 {
			// The counter enumerates 3^rounds leaf states; cap the sweep
			// where the dense walk stays sub-second.
			continue
		}
		res, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return nil, err
		}
		want := core.LowerBoundRounds(n)
		series = append(series, fmt.Sprintf("n=%d:%d", n, res.Rounds))
		if res.Rounds != want || res.Count != n {
			bad = append(bad, fmt.Sprintf("n=%d got (%d rounds, count %d) want %d rounds", n, res.Rounds, res.Count, want))
		}
	}
	measured := "rounds(n) = ⌊log₃(2n+1)⌋+1 exactly: " + strings.Join(series, " ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "T2", Name: "Theorem 2: counting on G(PD)_2 is Ω(log |V|)",
		Params:   "leader-state counter vs worst-case adversary",
		Paper:    "any counting algorithm needs Ω(log |V|) rounds",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// Corollary1 measures the chain composition: counting rounds equal
// delay + ⌊log₃(2n+1)⌋ + 1 = (D - 2) + Ω(log n) for every grid point.
func Corollary1(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range []int{4, 13, 40, 121} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, delay := range []int{0, 1, 3, 8} {
			res, err := core.ChainCountRounds(n, delay)
			if err != nil {
				return nil, err
			}
			want := core.ChainLowerBoundRounds(n, delay)
			series = append(series, fmt.Sprintf("(n=%d,delay=%d):%d", n, delay, res.Rounds))
			if res.Rounds != want || res.Count != n {
				bad = append(bad, fmt.Sprintf("n=%d delay=%d got %d want %d", n, delay, res.Rounds, want))
			}
		}
	}
	measured := strings.Join(series, " ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "C1", Name: "Corollary 1: D + Ω(log |V|) on chain compositions",
		Params:   "n ∈ {4,13,40,121} × delay ∈ {0,1,3,8}",
		Paper:    "counting needs at least D + Ω(log |V|) rounds",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
