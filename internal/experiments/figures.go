package experiments

import (
	"context"
	"fmt"

	"anondyn/internal/dynet"
	"anondyn/internal/figures"
	"anondyn/internal/kernel"
)

// Figure1 re-executes the Figure 1 caption: a 𝒢(PD)₂ graph over three
// rounds with dynamic diameter 4, where a flood from v₀ at round 0 reaches
// v₃ at round 3.
func Figure1(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := figures.NewFigure1()
	if err != nil {
		return nil, err
	}
	h, err := dynet.PDClass(f.Net, f.Leader, 3*f.Period)
	if err != nil {
		return nil, err
	}
	d, err := dynet.DynamicDiameter(f.Net, f.Period, 50)
	if err != nil {
		return nil, err
	}
	ft, err := dynet.FloodTime(f.Net, f.V0, 0, 50)
	if err != nil {
		return nil, err
	}
	connected := dynet.VerifyIntervalConnectivity(f.Net, 3*f.Period) == nil
	return []Row{
		{
			ID: "F1", Name: "Figure 1: example G(PD)_2 graph",
			Params:   "6 nodes, period 3",
			Paper:    "graph in G(PD)_2, 1-interval connected, D=4",
			Measured: fmt.Sprintf("PD class %d, connected=%v, D=%d", h, connected, d),
			Match:    h == 2 && connected && d == 4,
		},
		{
			ID: "F1", Name: "Figure 1: flood v0 -> v3",
			Params:   "flood from v0 at round 0",
			Paper:    "reaches v3 at round 3 (4 rounds)",
			Measured: fmt.Sprintf("flood completed in %d rounds", ft),
			Match:    ft == 4,
		},
	}, nil
}

// Figure2 re-executes the Figure 2 transformation: the ℳ(DBL₃) instance
// maps onto a 𝒢(PD)₂ graph with label-j relays adjacent exactly to the
// nodes carrying label j, and the transformation loses no information.
func Figure2(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := figures.NewFigure2()
	if err != nil {
		return nil, err
	}
	g := f.Net.Snapshot(0)
	structureOK := true
	for j := 1; j <= 3; j++ {
		for w := 0; w < f.M.W(); w++ {
			ls, err := f.M.LabelsAt(w, 0)
			if err != nil {
				return nil, err
			}
			if g.HasEdge(f.Layout.V1[j-1], f.Layout.V2[w]) != ls.Has(j) {
				structureOK = false
			}
		}
	}
	h, err := dynet.PDClass(f.Net, f.Layout.Leader, 1)
	if err != nil {
		return nil, err
	}
	return []Row{{
		ID: "F2", Name: "Figure 2: M(DBL_3) -> G(PD)_2 transformation",
		Params:   "3 W-nodes, k=3, node v with L(v)={1,2,3}",
		Paper:    "edge (id j, w) in image iff label j on w's leader edge; image is PD_2",
		Measured: fmt.Sprintf("structure preserved=%v, PD class %d", structureOK, h),
		Match:    structureOK && h == 2,
	}}, nil
}

// Figure3 re-executes Figure 3: sizes 2 and 4 indistinguishable at round 0,
// related by 2k₀, with the count interval after one round spanning [2,4].
func Figure3(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := figures.NewFigure3()
	if err != nil {
		return nil, err
	}
	va, err := f.M.LeaderView(1)
	if err != nil {
		return nil, err
	}
	vb, err := f.MPrime.LeaderView(1)
	if err != nil {
		return nil, err
	}
	iv, err := kernel.SolveCountInterval(va)
	if err != nil {
		return nil, err
	}
	equal := va.Equal(vb)
	return []Row{{
		ID: "F3", Name: "Figure 3: indistinguishable pair at r=0",
		Params:   "s0=[0 0 2] (|W|=2) vs s0'=[2 2 0] (|W|=4)",
		Paper:    "same leader state S(v_l,0); sizes 2 and 4 both consistent",
		Measured: fmt.Sprintf("views equal=%v, consistent sizes %s", equal, iv),
		Match:    equal && iv.MinSize == 2 && iv.MaxSize == 4,
	}}, nil
}

// Figure4 re-executes Figure 4: the printed s₁ and s₁′ = s₁ + k₁ of sizes 4
// and 5 give identical views through two rounds.
func Figure4(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := figures.NewFigure4()
	if err != nil {
		return nil, err
	}
	va, err := f.M.LeaderView(2)
	if err != nil {
		return nil, err
	}
	vb, err := f.MPrime.LeaderView(2)
	if err != nil {
		return nil, err
	}
	iv, err := kernel.SolveCountInterval(va)
	if err != nil {
		return nil, err
	}
	equal := va.Equal(vb)
	return []Row{{
		ID: "F4", Name: "Figure 4: indistinguishable pair at r=1",
		Params:   "s1=[0 0 1 0 0 1 1 1 0] (|W|=4) vs s1'=s1+k1 (|W|=5)",
		Paper:    "same leader state S(v_l,1)=m_1; sizes 4 and 5 both consistent",
		Measured: fmt.Sprintf("views equal=%v, consistent sizes %s", equal, iv),
		Match:    equal && iv.MinSize <= 4 && iv.MaxSize >= 5,
	}}, nil
}
