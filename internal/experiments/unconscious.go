package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/core"
)

// ConsciousVsUnconscious measures the distinction of [12] on the
// worst-case schedules: an unconscious guesser tracking the interval
// minimum stabilizes on the truth before the conscious counter may
// terminate, while a guesser tracking the maximum is fooled by the
// adversary's size-(n+1) twin until the very collapse round.
func ConsciousVsUnconscious(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range []int{4, 13, 40, 121} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pair, err := core.WorstCasePair(n)
		if err != nil {
			return nil, err
		}
		ext, err := pair.Extend(pair.Rounds + 2)
		if err != nil {
			return nil, err
		}
		minRes, err := core.UnconsciousCount(ext.M, core.GuessMin, ext.M.Horizon())
		if err != nil {
			return nil, err
		}
		maxRes, err := core.UnconsciousCount(ext.M, core.GuessMax, ext.M.Horizon())
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("n=%d: conscious %d, min-guess stable %d, max-guess stable %d",
			n, minRes.ConsciousAt, minRes.CorrectFrom, maxRes.CorrectFrom))
		if minRes.ConsciousAt != core.LowerBoundRounds(n) {
			bad = append(bad, fmt.Sprintf("n=%d: conscious at %d != bound", n, minRes.ConsciousAt))
		}
		if maxRes.CorrectFrom != maxRes.ConsciousAt {
			bad = append(bad, fmt.Sprintf("n=%d: max-guess stabilized early (%d < %d)", n, maxRes.CorrectFrom, maxRes.ConsciousAt))
		}
		if minRes.CorrectFrom >= maxRes.CorrectFrom {
			bad = append(bad, fmt.Sprintf("n=%d: min-guess (%d) not earlier than max-guess (%d)", n, minRes.CorrectFrom, maxRes.CorrectFrom))
		}
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "S2", Name: "Study: conscious vs unconscious counting [12]",
		Params:   "worst-case schedules, guess policies min/max, n ∈ {4,13,40,121}",
		Paper:    "knowing the count and knowing THAT you know it are separated by the adversary",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
