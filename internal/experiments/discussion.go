package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/core"
	"anondyn/internal/counting"
	"anondyn/internal/dissemination"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
)

// restrictedPD2 builds a restricted 𝒢(PD)₂ network (no intra-layer edges)
// with k relays and `outer` V₂ nodes whose attachments rotate every round.
func restrictedPD2(k, outer int) (dynet.Dynamic, []graph.NodeID, []graph.NodeID) {
	n := 1 + k + outer
	v1 := make([]graph.NodeID, k)
	for i := range v1 {
		v1[i] = graph.NodeID(1 + i)
	}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(n, func(r int) *graph.Graph {
		g := graph.New(n)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			_ = g.AddEdge(v1[(i+r)%k], w)
			if i%2 == 1 {
				_ = g.AddEdge(v1[(i+r+1)%k], w)
			}
		}
		return g
	})
	return net, v1, v2
}

// Discussion measures the degree-oracle algorithm: constant rounds across
// sizes, versus the growing anonymous lower bound for the same sizes.
func Discussion(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, outer := range []int{3, 9, 27, 81, 243} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		net, v1, v2 := restrictedPD2(2, outer)
		count, rounds, err := counting.OracleCount(net, 0, v1, v2, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		want := 1 + 2 + outer
		series = append(series, fmt.Sprintf("n=%d:%d rounds (anon bound %d)", want, rounds, core.LowerBoundRounds(outer)))
		if count != want || rounds != 2 {
			bad = append(bad, fmt.Sprintf("outer=%d got count %d in %d rounds", outer, count, rounds))
		}
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "D1", Name: "Discussion: degree oracle collapses the bound",
		Params:   "restricted G(PD)_2, k=2, |V2| ∈ {3,9,27,81,243}",
		Paper:    "with |N(v,r)| known before sending, counting takes O(1) rounds",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// Gap runs the headline comparison on the same worst-case networks:
// flooding (information dissemination) completes within the dynamic
// diameter, while exact counting needs the extra Ω(log n) anonymity rounds.
func Gap(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	maxD := 0
	var countSeries []int
	sizes := []int{4, 13, 40, 121, 364}
	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wc, err := core.WorstCaseAdversary(n)
		if err != nil {
			return nil, err
		}
		horizon := wc.Schedule.Horizon()
		d, err := dynet.DynamicDiameter(wc.Net, horizon, 200)
		if err != nil {
			return nil, err
		}
		initial, err := dissemination.SingleSource(wc.Net.N(), int(wc.Layout.Leader), 1)
		if err != nil {
			return nil, err
		}
		fl, err := dissemination.Run(wc.Net, initial, dissemination.Unlimited, 200, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		cnt, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("n=%d: flood %d, D %d, count %d", n, fl.Rounds, d, cnt.Rounds))
		if fl.Rounds > d {
			bad = append(bad, fmt.Sprintf("n=%d: flood %d exceeds D %d", n, fl.Rounds, d))
		}
		if d > maxD {
			maxD = d
		}
		countSeries = append(countSeries, cnt.Rounds)
	}
	// The paper's shape: D stays constant in |V| while counting rounds
	// grow as log |V| and eventually exceed any fixed D.
	for i := 1; i < len(countSeries); i++ {
		if countSeries[i] <= countSeries[i-1] {
			bad = append(bad, fmt.Sprintf("count rounds not increasing at n=%d", sizes[i]))
		}
	}
	if maxD > 4 {
		bad = append(bad, fmt.Sprintf("dynamic diameter %d not constant-bounded", maxD))
	}
	if countSeries[len(countSeries)-1] <= maxD {
		bad = append(bad, fmt.Sprintf("count rounds %d never exceeded D=%d", countSeries[len(countSeries)-1], maxD))
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "G1", Name: "Headline gap: dissemination vs counting",
		Params:   fmt.Sprintf("worst-case G(PD)_2 networks, n ∈ %v", sizes),
		Paper:    "D constant in |V|; counting grows as Ω(log |V|) and outgrows D",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}

// AblationK3 repeats the indistinguishability construction inside ℳ(DBL)₃
// (ℳ(DBL)₂ ⊆ ℳ(DBL)ₖ) and checks that larger alphabets only make counting
// harder: the kernel of M_r grows with k.
func AblationK3(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Kernel dimensions for k=3 exceed 1 already at r=0.
	m3, err := kernel.Matrix(0, 3)
	if err != nil {
		return nil, err
	}
	dim3 := len(m3.KernelBasis())
	m2, err := kernel.Matrix(0, 2)
	if err != nil {
		return nil, err
	}
	dim2 := len(m2.KernelBasis())

	// The k=2 worst-case pair remains valid (and indistinguishable —
	// relabeling included) when interpreted over the k=3 alphabet.
	pair, err := core.WorstCasePair(13)
	if err != nil {
		return nil, err
	}
	va, err := pair.M.LeaderView(pair.Rounds)
	if err != nil {
		return nil, err
	}
	vb, err := pair.MPrime.LeaderView(pair.Rounds)
	if err != nil {
		return nil, err
	}
	embedOK := va.Equal(vb)

	// Measured ambiguity after one round when every node shows its full
	// label set: 2 nodes on {1,2} (k=2) vs 2 nodes on {1,2,3} (k=3).
	full2, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2)}, {multigraph.SetOf(1, 2)},
	})
	if err != nil {
		return nil, err
	}
	v2view, err := full2.LeaderView(1)
	if err != nil {
		return nil, err
	}
	sizes2, err := kernel.EnumerateSizes(v2view, 2, kernel.EnumLimits{})
	if err != nil {
		return nil, err
	}
	m3full, err := multigraph.New(3, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2, 3)}, {multigraph.SetOf(1, 2, 3)},
	})
	if err != nil {
		return nil, err
	}
	v3view, err := m3full.LeaderView(1)
	if err != nil {
		return nil, err
	}
	sizes3, err := kernel.EnumerateSizes(v3view, 3, kernel.EnumLimits{})
	if err != nil {
		return nil, err
	}
	return []Row{{
		ID: "A1", Name: "Ablation: alphabet size k",
		Params: "kernel dims at r=0; k=2 pair embedded in DBL_3; 2-node full-label views",
		Paper:  "M(DBL)_2 ⊆ M(DBL)_k: the bound holds for every k ≥ 2, and grows with k",
		Measured: fmt.Sprintf("dim ker k=2: %d, k=3: %d; embedded pair indistinguishable=%v; consistent sizes k=2: %v, k=3: %v",
			dim2, dim3, embedOK, sizes2, sizes3),
		Match: dim2 == 1 && dim3 > 1 && embedOK && len(sizes3) > len(sizes2),
	}}, nil
}

// AblationStar confirms the h = 1 boundary: on 𝒢(PD)₁ stars the count is
// exact after one round at every size — anonymity costs nothing at
// persistent distance 1.
func AblationStar(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range []int{2, 5, 20, 100, 500} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		star, err := graph.Star(n, 0)
		if err != nil {
			return nil, err
		}
		count, rounds, err := counting.StarCount(dynet.NewStatic(star), 0, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("n=%d:%d round", n, rounds))
		if count != n || rounds != 1 {
			bad = append(bad, fmt.Sprintf("n=%d got count %d in %d rounds", n, count, rounds))
		}
	}
	measured := strings.Join(series, " ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "A2", Name: "Ablation: G(PD)_1 stars count in one round",
		Params:   "n ∈ {2,5,20,100,500}",
		Paper:    "the leader outputs the exact count in one round, independent of anonymity",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
