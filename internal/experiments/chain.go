package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/chainnet"
	"anondyn/internal/core"
	"anondyn/internal/runtime"
)

// Corollary1EndToEnd re-runs Corollary 1 as a genuine message-passing
// system: a leader behind a static chain, labeled relays, and W nodes on
// the worst-case schedule, all executing the full-information protocol on
// the synchronous engine. The leader's measured termination round must be
// exactly (chain delay) + ⌊log₃(2n+1)⌋ + 1.
func Corollary1EndToEnd(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, tc := range []struct{ n, chainLen int }{
		{4, 0}, {4, 2}, {13, 3}, {40, 5}, {121, 8},
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nw, err := chainnet.Build(tc.n, tc.chainLen)
		if err != nil {
			return nil, err
		}
		bound := core.LowerBoundRounds(tc.n)
		res, err := chainnet.RunCount(nw, bound+nw.Delay()+5, runtime.SequentialEngine(ctx))
		if err != nil {
			return nil, err
		}
		want := bound + nw.Delay()
		series = append(series, fmt.Sprintf("(n=%d,chain=%d):%d", tc.n, tc.chainLen, res.Rounds))
		if res.Count != tc.n || res.Rounds != want {
			bad = append(bad, fmt.Sprintf("n=%d chain=%d: got (count %d, %d rounds), want %d rounds",
				tc.n, tc.chainLen, res.Count, res.Rounds, want))
		}
	}
	measured := "rounds = delay + ⌊log₃(2n+1)⌋ + 1 exactly: " + strings.Join(series, " ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "C2", Name: "Corollary 1 end-to-end: full message-passing protocol",
		Params:   "(n, chain) ∈ {(4,0),(4,2),(13,3),(40,5),(121,8)}",
		Paper:    "counting needs at least D + Ω(log |V|) rounds",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
