package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestEveryExperimentMatches(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rows, err := r.Fn(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range rows {
				if row.ID != r.ID {
					t.Errorf("row ID %q under runner %q", row.ID, r.ID)
				}
				if !row.Match {
					t.Errorf("MISMATCH: %s — paper %q, measured %q", row.Name, row.Paper, row.Measured)
				}
				for _, field := range []string{row.Name, row.Params, row.Paper, row.Measured} {
					if field == "" {
						t.Errorf("row %s has an empty field", row.Name)
					}
				}
			}
		})
	}
}

func TestRunAllAndFormat(t *testing.T) {
	rows, err := RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < len(All()) {
		t.Fatalf("only %d rows for %d experiments", len(rows), len(All()))
	}
	if !AllMatch(rows) {
		t.Fatal("not all rows matched")
	}
	table := FormatTable(rows)
	if !strings.Contains(table, "| ID |") {
		t.Fatal("table missing header")
	}
	if strings.Contains(table, "| NO |") {
		t.Fatal("table contains mismatches")
	}
	// One line per row plus two header lines.
	if got := strings.Count(table, "\n"); got != len(rows)+2 {
		t.Fatalf("table has %d lines, want %d", got, len(rows)+2)
	}
}

func TestFormatTableMarksMismatch(t *testing.T) {
	rows := []Row{{ID: "X", Name: "x", Params: "p", Paper: "a", Measured: "b", Match: false}}
	if !strings.Contains(FormatTable(rows), "| NO |") {
		t.Fatal("mismatch not marked")
	}
	if AllMatch(rows) {
		t.Fatal("AllMatch true on mismatch")
	}
}

// TestCanceledContextAbortsExperiments verifies every experiment and the
// suite runner honor a canceled context instead of running the workload.
func TestCanceledContextAbortsExperiments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll on canceled context: %v, want context.Canceled", err)
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rows, err := r.Fn(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s on canceled context returned (%d rows, %v), want context.Canceled", r.ID, len(rows), err)
			}
		})
	}
}
