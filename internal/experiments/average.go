package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/montecarlo"
)

// AverageCase contrasts random (fair) schedules with the worst case: the
// mean counting time on random ℳ(DBL)₂ schedules stays small and flat
// while the adversarial time grows as ⌊log₃(2n+1)⌋+1 — and no random
// schedule ever exceeds the worst case, which is also a correctness check
// on the bound (beyond it, Σ⁻k_r > n forces uniqueness for every
// schedule).
func AverageCase(ctx context.Context) ([]Row, error) {
	comps, err := montecarlo.Compare(ctx, []int{13, 40, 121, 364}, 40, 10, 99)
	if err != nil {
		return nil, err
	}
	var bad []string
	var series []string
	for _, c := range comps {
		series = append(series, fmt.Sprintf("n=%d: mean %.2f p99 %d worst %d",
			c.N, c.Average.Mean, c.Average.P99, c.WorstCase))
		if c.WorstCase != c.LowerBound {
			bad = append(bad, fmt.Sprintf("n=%d: worst %d != bound %d", c.N, c.WorstCase, c.LowerBound))
		}
		if c.Average.Max > c.WorstCase {
			bad = append(bad, fmt.Sprintf("n=%d: random max %d beats the worst case %d", c.N, c.Average.Max, c.WorstCase))
		}
		if c.Average.Failures > 0 {
			bad = append(bad, fmt.Sprintf("n=%d: %d unresolved trials", c.N, c.Average.Failures))
		}
	}
	last := comps[len(comps)-1]
	if float64(last.WorstCase)-last.Average.Mean < 1 {
		bad = append(bad, "no visible gap between average and worst case at the largest size")
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "S1", Name: "Study: average vs worst case",
		Params:   "40 random schedules per size, n ∈ {13,40,121,364}",
		Paper:    "the bound is adversarial: typical schedules resolve much faster, none slower",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
