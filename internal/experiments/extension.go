package experiments

import (
	"context"
	"fmt"
	"strings"

	"anondyn/internal/core"
)

// ExtensionAnonymousRelays executes the upper-bound converse of Lemma 1's
// remark: the lemma drops the V₁ identifiers to argue anonymity can only
// hurt; this experiment shows that with full-information relays the leader
// THREADS the anonymous relay streams by content (deliberately taking the
// wrong branch at every symmetric point) and still counts at exactly the
// labeled bound. The Ω(log |V|) cost is charged by the anonymity of the
// counted nodes, not of the relay layer.
func ExtensionAnonymousRelays(ctx context.Context) ([]Row, error) {
	var bad []string
	var series []string
	for _, n := range []int{1, 4, 13, 40, 121} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pair, err := core.WorstCasePair(n)
		if err != nil {
			return nil, err
		}
		ext, err := pair.Extend(pair.Rounds + 2)
		if err != nil {
			return nil, err
		}
		res, err := core.AnonymousCountRounds(ext.M, ext.M.Horizon())
		if err != nil {
			return nil, err
		}
		labeled, err := core.CountOnMultigraph(ext.M, ext.M.Horizon())
		if err != nil {
			return nil, err
		}
		series = append(series, fmt.Sprintf("n=%d: anonymous %d = labeled %d rounds", n, res.Rounds, labeled.Rounds))
		if res.Count != n || res.Rounds != labeled.Rounds {
			bad = append(bad, fmt.Sprintf("n=%d: anonymous (%d, %d) vs labeled (%d, %d)",
				n, res.Count, res.Rounds, labeled.Count, labeled.Rounds))
		}
	}
	measured := strings.Join(series, "; ")
	if len(bad) > 0 {
		measured = "FAILURES: " + strings.Join(bad, "; ")
	}
	return []Row{{
		ID: "E1", Name: "Extension: anonymous relays cost nothing extra",
		Params:   "stream threading with adversarial tie-breaking, n ∈ {1,4,13,40,121}",
		Paper:    "(beyond the paper) Lemma 1's ID assumption is WLOG on the upper-bound side",
		Measured: measured,
		Match:    len(bad) == 0,
	}}, nil
}
