package experiments

import (
	"context"
	"fmt"
	"math/big"

	"anondyn/internal/kernel"
)

// Lemma2 verifies dim ker(M_r) = 1 by exact elimination for r = 0..3.
func Lemma2(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	maxR := 3
	ok := true
	detail := ""
	for r := 0; r <= maxR; r++ {
		m, err := kernel.Matrix(r, 2)
		if err != nil {
			return nil, err
		}
		dim := len(m.KernelBasis())
		fullRank := m.Rank() == m.Rows()
		if dim != 1 || !fullRank {
			ok = false
		}
		detail += fmt.Sprintf("r=%d:dim=%d ", r, dim)
	}
	return []Row{{
		ID: "L2", Name: "Lemma 2: kernel dimension of M_r",
		Params:   fmt.Sprintf("exact rational elimination, r=0..%d", maxR),
		Paper:    "rows independent; dim ker(M_r) = 1",
		Measured: detail,
		Match:    ok,
	}}, nil
}

// Lemma3 verifies the kernel recursion k_r = [k_{r-1} k_{r-1} -k_{r-1}]ᵀ and
// that the closed form spans the eliminated kernel.
func Lemma3(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ok := true
	for r := 1; r <= 6; r++ {
		prev := kernel.ClosedFormKernel(r - 1)
		want := prev.Append(prev).Append(prev.Neg())
		if !kernel.ClosedFormKernel(r).Equal(want) {
			ok = false
		}
	}
	elimOK := true
	for r := 0; r <= 3; r++ {
		m, err := kernel.Matrix(r, 2)
		if err != nil {
			return nil, err
		}
		got := m.KernelBasis()[0]
		want := kernel.ClosedFormKernel(r)
		if !got.Equal(want) && !got.Equal(want.Neg()) {
			elimOK = false
		}
	}
	nullOK := true
	for r := 0; r <= 5; r++ {
		m, err := kernel.Matrix(r, 2)
		if err != nil {
			return nil, err
		}
		prod, err := m.MulVec(kernel.ClosedFormKernel(r))
		if err != nil {
			return nil, err
		}
		if !prod.IsZero() {
			nullOK = false
		}
	}
	// Matrix-free verification beyond dense reach: M_10 has ~177k columns.
	deepOK := true
	for r := 8; r <= 10; r++ {
		prod, err := kernel.StructuredMulVec(r, 2, kernel.ClosedFormKernel(r))
		if err != nil {
			return nil, err
		}
		if !prod.IsZero() {
			deepOK = false
		}
	}
	return []Row{{
		ID: "L3", Name: "Lemma 3: recursive kernel structure",
		Params:   "recursion r=1..6; elimination cross-check r=0..3; M_r k_r = 0 dense to r=5, matrix-free to r=10",
		Paper:    "k_r = [k_{r-1} k_{r-1} -k_{r-1}]ᵀ spans ker(M_r)",
		Measured: fmt.Sprintf("recursion=%v, matches elimination=%v, in nullspace=%v, deep (r≤10)=%v", ok, elimOK, nullOK, deepOK),
		Match:    ok && elimOK && nullOK && deepOK,
	}}, nil
}

// Lemma4 verifies Σk_r = 1 and Σ⁻k_r = ½(3^{r+1}+1) − 1 against the
// explicit vectors (r ≤ 8) and in closed form beyond.
func Lemma4(ctx context.Context) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ok := true
	for r := 0; r <= 8; r++ {
		k := kernel.ClosedFormKernel(r)
		if k.Sum().Cmp(big.NewInt(1)) != 0 {
			ok = false
		}
		if k.SumNegative().Cmp(kernel.KernelSumNegative(r)) != 0 {
			ok = false
		}
		if k.SumPositive().Cmp(kernel.KernelSumPositive(r)) != 0 {
			ok = false
		}
	}
	// The paper's printed example: Σ⁺k_1 = 5, Σ⁻k_1 = 4.
	example := kernel.KernelSumPositive(1).Int64() == 5 && kernel.KernelSumNegative(1).Int64() == 4
	return []Row{{
		ID: "L4", Name: "Lemma 4: kernel sums",
		Params:   "explicit vectors r=0..8; closed forms",
		Paper:    "Σk_r = 1; Σ⁻k_r = ½(3^{r+1}+1)−1; example Σ⁺k_1=5, Σ⁻k_1=4",
		Measured: fmt.Sprintf("all sums match=%v, r=1 example=%v", ok, example),
		Match:    ok && example,
	}}, nil
}
