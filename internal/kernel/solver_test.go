package kernel

import (
	"math/big"
	"testing"

	"anondyn/internal/multigraph"
)

func mustMG(t *testing.T, labels [][]multigraph.LabelSet) *multigraph.Multigraph {
	t.Helper()
	m, err := multigraph.New(2, labels)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustView(t *testing.T, m *multigraph.Multigraph, rounds int) multigraph.LeaderView {
	t.Helper()
	v, err := m.LeaderView(rounds)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSolveEmptyViewUnbounded(t *testing.T) {
	iv, err := SolveCountInterval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Unbounded || iv.MinSize != 0 {
		t.Fatalf("empty view interval = %v", iv)
	}
	if iv.Unique() {
		t.Fatal("unbounded interval cannot be unique")
	}
	if _, err := ConsistentSizes(nil); err == nil {
		t.Fatal("ConsistentSizes of empty view should error")
	}
}

func TestSolveFigure3(t *testing.T) {
	// Figure 3's leader state at round 0: two edges labeled 1, two labeled
	// 2, all from ⊥-state nodes. Consistent sizes are 2, 3, 4.
	m := mustMG(t, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2)},
		{multigraph.SetOf(1, 2)},
	})
	iv, err := SolveCountInterval(mustView(t, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if iv.MinSize != 2 || iv.MaxSize != 4 {
		t.Fatalf("interval = %v, want [2,4]", iv)
	}
	sizes, err := ConsistentSizes(mustView(t, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 2 || sizes[2] != 4 {
		t.Fatalf("sizes = %v, want [2 3 4]", sizes)
	}
}

func TestSolveStarLikeUniqueImmediately(t *testing.T) {
	// All nodes on label {1} only: |(2,⊥)| = 0 forces c0 = 0 and pins the
	// count after a single round.
	m := mustMG(t, [][]multigraph.LabelSet{
		{multigraph.SetOf(1)},
		{multigraph.SetOf(1)},
		{multigraph.SetOf(1)},
	})
	iv, err := SolveCountInterval(mustView(t, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Unique() || iv.MinSize != 3 {
		t.Fatalf("interval = %v, want unique 3", iv)
	}
}

func TestSolveTrueSizeAlwaysConsistent(t *testing.T) {
	// Property over random multigraphs: the true size is always inside the
	// computed interval, and the interval shrinks (weakly) with more
	// rounds.
	for seed := int64(0); seed < 30; seed++ {
		mg, err := multigraph.Random(2, int(3+seed%6), 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		prevWidth := int(^uint(0) >> 1)
		for rounds := 1; rounds <= 4; rounds++ {
			iv, err := SolveCountInterval(mustView(t, mg, rounds))
			if err != nil {
				t.Fatal(err)
			}
			if iv.Empty || iv.Unbounded {
				t.Fatalf("seed=%d rounds=%d: interval = %v", seed, rounds, iv)
			}
			if mg.W() < iv.MinSize || mg.W() > iv.MaxSize {
				t.Fatalf("seed=%d rounds=%d: true size %d outside %v", seed, rounds, mg.W(), iv)
			}
			if iv.Width() > prevWidth {
				t.Fatalf("seed=%d rounds=%d: interval widened: %d > %d", seed, rounds, iv.Width(), prevWidth)
			}
			prevWidth = iv.Width()
		}
	}
}

// Cross-check the structured solver against the dense linear algebra: the
// interval width must equal the number of t with s* + t·k_r non-negative.
func TestSolverMatchesDenseEnumeration(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		mg, err := multigraph.Random(2, 5, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 2; r++ {
			view := mustView(t, mg, r+1)
			iv, err := SolveCountInterval(view)
			if err != nil {
				t.Fatal(err)
			}
			// Dense path: particular solution plus kernel sweep.
			m, err := Matrix(r, 2)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := ObservationVector(view, r, 2)
			if err != nil {
				t.Fatal(err)
			}
			part, ok, err := m.SolveParticular(obs)
			if err != nil || !ok {
				t.Fatalf("seed=%d r=%d: dense solve failed: ok=%v err=%v", seed, r, ok, err)
			}
			kv := ClosedFormKernel(r)
			denseSizes := make(map[int]bool)
			for tt := -200; tt <= 200; tt++ {
				cand := part.Add(kv.Scale(big.NewInt(int64(tt))))
				if cand.NonNegative() {
					denseSizes[int(cand.Sum().Int64())] = true
				}
			}
			if len(denseSizes) != iv.Width() {
				t.Fatalf("seed=%d r=%d: dense found %d sizes, solver interval %v", seed, r, len(denseSizes), iv)
			}
			for n := iv.MinSize; n <= iv.MaxSize; n++ {
				if !denseSizes[n] {
					t.Fatalf("seed=%d r=%d: solver size %d not found densely", seed, r, n)
				}
			}
		}
	}
}

func TestForcedConfigurationRoundTrip(t *testing.T) {
	// For every feasible c0, the reconstructed multigraph reproduces the
	// observed view exactly — the constructive core of Lemma 5.
	for seed := int64(0); seed < 10; seed++ {
		mg, err := multigraph.Random(2, 5, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		view := mustView(t, mg, 2)
		iv, err := SolveCountInterval(view)
		if err != nil {
			t.Fatal(err)
		}
		// The feasible c0 range maps to sizes [MinSize, MaxSize] with
		// n = total - c0; recover the c0 range by trying values.
		found := 0
		for c0 := 0; c0 <= 50; c0++ {
			counts, err := ForcedConfiguration(view, c0)
			if err != nil {
				continue
			}
			found++
			rec, err := multigraph.FromHistoryCounts(2, 2, counts)
			if err != nil {
				t.Fatal(err)
			}
			recView, err := rec.LeaderView(2)
			if err != nil {
				t.Fatal(err)
			}
			if !recView.Equal(view) {
				t.Fatalf("seed=%d c0=%d: reconstructed view differs", seed, c0)
			}
		}
		if found != iv.Width() {
			t.Fatalf("seed=%d: %d feasible c0 values, interval %v", seed, found, iv)
		}
	}
}

func TestForcedConfigurationErrors(t *testing.T) {
	if _, err := ForcedConfiguration(nil, 0); err == nil {
		t.Fatal("empty view should error")
	}
	m := mustMG(t, [][]multigraph.LabelSet{{multigraph.SetOf(1)}})
	view := mustView(t, m, 1)
	if _, err := ForcedConfiguration(view, 5); err == nil {
		t.Fatal("infeasible c0 should error")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{MinSize: 3, MaxSize: 3}
	if !iv.Unique() || iv.Width() != 1 || iv.String() != "[3,3]" {
		t.Fatalf("interval helpers wrong: %v %d %s", iv.Unique(), iv.Width(), iv)
	}
	empty := Interval{Empty: true}
	if empty.Width() != 0 || empty.String() != "∅" || empty.Unique() {
		t.Fatal("empty interval helpers wrong")
	}
	unb := Interval{Unbounded: true}
	if unb.String() != "[0,∞)" || unb.Unique() {
		t.Fatal("unbounded interval helpers wrong")
	}
}

func TestSolveInconsistentViewEmpty(t *testing.T) {
	// Fabricate an impossible view: round 0 says one node on {1}, round 1
	// claims a node whose state was {2}.
	bad := multigraph.LeaderView{
		{
			{Label: 1, StateKey: multigraph.History{}.Key()}: 1,
		},
		{
			{Label: 1, StateKey: multigraph.History{multigraph.SetOf(2)}.Key()}: 1,
		},
	}
	iv, err := SolveCountInterval(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Empty {
		t.Fatalf("inconsistent view gave %v, want empty", iv)
	}
}
