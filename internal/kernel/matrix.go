// Package kernel implements the linear-algebraic machinery of the paper's
// Section 4.2: the coefficient matrices M_r whose non-negative integer
// solutions are exactly the ℳ(DBL)ₖ configurations consistent with a leader
// state, the one-dimensional kernel k_r of M_r for k = 2 (Lemmas 2-3), the
// kernel sums of Lemma 4, and an exact solver that computes the set of
// network sizes consistent with an observed leader view — the optimal
// counting rule whose termination round matches Theorem 1's lower bound.
package kernel

import (
	"fmt"
	"math"
	"math/big"

	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

// Cols returns the number of columns of M_r for alphabet size k: the number
// of node states at round r+1, (2^k - 1)^{r+1} (the paper's 3^{r+1}). Like
// HistoryCount it saturates at math.MaxInt (r >= 39 for k = 2) instead of
// wrapping.
func Cols(r, k int) int {
	return multigraph.HistoryCount(r+1, k)
}

// Rows returns the number of rows of M_r: one per leader connection
// (j, S(v, r')) over rounds r' = 0..r, i.e. k * Σ_{i=0}^{r} (2^k - 1)^i
// (the paper's 2 Σ 3^i). The sum saturates at math.MaxInt instead of
// wrapping at large r.
func Rows(r, k int) int {
	total := 0
	for i := 0; i <= r; i++ {
		h := multigraph.HistoryCount(i, k)
		if h > math.MaxInt/k || total > math.MaxInt-k*h {
			return math.MaxInt
		}
		total += k * h
	}
	return total
}

// RowIndex returns the row of M_r corresponding to the connection
// (label j, state y) introduced at round len(y). Rows are grouped by round,
// within a round by label, within a label by state index — the paper's
// lexicographic ordering (see its Equation 4/5 example).
func RowIndex(r, k int, j int, y multigraph.History) (int, error) {
	if j < 1 || j > k {
		return 0, fmt.Errorf("kernel: label %d out of range [1,%d]", j, k)
	}
	round := len(y)
	if round > r {
		return 0, fmt.Errorf("kernel: state of length %d beyond round %d", round, r)
	}
	offset := 0
	for i := 0; i < round; i++ {
		offset += k * multigraph.HistoryCount(i, k)
	}
	states := multigraph.HistoryCount(round, k)
	return offset + (j-1)*states + y.Index(k), nil
}

// Matrix builds the dense coefficient matrix M_r for alphabet size k.
// Entry ((j, y), h) is 1 iff the full history h extends the state y and has
// label j in its round-len(y) entry — i.e. a node with history h was
// connected to the leader by an edge labeled j at round len(y) while in
// state y. The size is exponential in r; r ≤ 6 at k = 2 stays practical.
func Matrix(r, k int) (*linalg.Matrix, error) {
	if r < 0 {
		return nil, fmt.Errorf("kernel: negative round %d", r)
	}
	if k < 1 || k > multigraph.MaxK {
		return nil, fmt.Errorf("kernel: alphabet size %d out of range [1,%d]", k, multigraph.MaxK)
	}
	rows, cols := Rows(r, k), Cols(r, k)
	m, err := linalg.NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	for c := 0; c < cols; c++ {
		h := multigraph.HistoryFromIndex(c, r+1, k)
		for round := 0; round <= r; round++ {
			y := h.Prefix(round)
			for _, j := range h[round].Labels() {
				ri, err := RowIndex(r, k, j, y)
				if err != nil {
					return nil, err
				}
				m.SetInt64(ri, c, 1)
			}
		}
	}
	return m, nil
}

// ObservationVector converts a leader view into the constant vector m_r of
// the system m_r = M_r s_r: entry (j, y) is |(j, S(v, len(y)) = y)|, the
// number of nodes observed in state y behind an edge labeled j at round
// len(y). The view must cover rounds 0..r.
func ObservationVector(view multigraph.LeaderView, r, k int) (linalg.Vector, error) {
	if len(view) < r+1 {
		return nil, fmt.Errorf("kernel: view covers %d rounds, need %d", len(view), r+1)
	}
	vec := linalg.NewVector(Rows(r, k))
	for round := 0; round <= r; round++ {
		for key, count := range view[round] {
			y, err := historyFromKey(key.StateKey, round)
			if err != nil {
				return nil, err
			}
			ri, err := RowIndex(r, k, key.Label, y)
			if err != nil {
				return nil, err
			}
			vec[ri].SetInt64(int64(count))
		}
	}
	return vec, nil
}

// historyFromKey parses the compact History.Key encoding, validating that
// the history has the expected length.
func historyFromKey(key string, wantLen int) (multigraph.History, error) {
	if key == "" {
		if wantLen != 0 {
			return nil, fmt.Errorf("kernel: empty state key for round %d", wantLen)
		}
		return multigraph.History{}, nil
	}
	var h multigraph.History
	cur := uint64(0)
	digits := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == '.' {
			// Components must be canonical decimals of valid label sets:
			// non-empty, no leading zeros, non-zero value, within range.
			if digits == 0 || cur == 0 || cur > uint64(1)<<multigraph.MaxK-1 {
				return nil, fmt.Errorf("kernel: malformed state key %q", key)
			}
			h = append(h, multigraph.LabelSet(cur))
			cur, digits = 0, 0
			continue
		}
		c := key[i]
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("kernel: malformed state key %q", key)
		}
		if digits > 0 && cur == 0 {
			return nil, fmt.Errorf("kernel: malformed state key %q (leading zero)", key)
		}
		cur = cur*10 + uint64(c-'0')
		digits++
		if digits > 6 {
			return nil, fmt.Errorf("kernel: malformed state key %q (component too long)", key)
		}
	}
	if len(h) != wantLen {
		return nil, fmt.Errorf("kernel: state key %q has length %d, want %d", key, len(h), wantLen)
	}
	return h, nil
}

// TrueSolutionVector returns the ground-truth s_r of a multigraph: node
// counts per full history of length r+1, as a linalg.Vector. By
// construction, Matrix(r,k) * TrueSolutionVector = ObservationVector — the
// identity the whole of Section 4.2 rests on, and checked by property tests.
func TrueSolutionVector(m *multigraph.Multigraph, r int) (linalg.Vector, error) {
	counts, err := m.HistoryCounts(r + 1)
	if err != nil {
		return nil, err
	}
	vec := linalg.NewVector(len(counts))
	for i, c := range counts {
		vec[i].SetInt64(int64(c))
	}
	return vec, nil
}

// ClosedFormKernel returns the paper's kernel vector k_r for the k = 2
// family (Lemma 3): component h is the product over the entries of h of
// +1 for {1} or {2} and -1 for {1,2}; equivalently the recursive
// [k_{r-1} k_{r-1} -k_{r-1}]ᵀ with k_{-1} = 1.
func ClosedFormKernel(r int) linalg.Vector {
	cols := Cols(r, 2)
	vec := linalg.NewVector(cols)
	full := multigraph.SetOf(1, 2)
	for c := 0; c < cols; c++ {
		h := multigraph.HistoryFromIndex(c, r+1, 2)
		sign := int64(1)
		for _, s := range h {
			if s == full {
				sign = -sign
			}
		}
		vec[c].SetInt64(sign)
	}
	return vec
}

// ClosedFormKernelSigns returns the Lemma-3 kernel as int8 entries (every
// component is ±1): the allocation-light counterpart of ClosedFormKernel
// for callers that only need signs and small-integer arithmetic, such as
// core.IndistinguishablePair on the worst-case construction hot path. The
// sign of entry c is (-1)^{#{1,2} symbols in the history of index c}, read
// off the base-3 digits directly (digit 2 is the {1,2} symbol) with no
// History materialization.
func ClosedFormKernelSigns(r int) []int8 {
	cols := Cols(r, 2)
	out := make([]int8, cols)
	for c := 0; c < cols; c++ {
		sign := int8(1)
		for x := c; x > 0; x /= 3 {
			if x%3 == 2 {
				sign = -sign
			}
		}
		out[c] = sign
	}
	return out
}

// KernelSumNegative returns Σ⁻k_r = (3^{r+1} - 1) / 2, the Lemma 4 quantity:
// the number of processes the adversary needs in order to keep sizes n and
// n+1 indistinguishable through round r.
func KernelSumNegative(r int) *big.Int {
	p := new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(r+1)), nil)
	p.Sub(p, big.NewInt(1))
	return p.Rsh(p, 1)
}

// KernelSumPositive returns Σ⁺k_r = (3^{r+1} + 1) / 2 (Lemma 4).
func KernelSumPositive(r int) *big.Int {
	p := new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(r+1)), nil)
	p.Add(p, big.NewInt(1))
	return p.Rsh(p, 1)
}
