package kernel

import (
	"fmt"
	"math/big"

	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

// StructuredMulVec computes M_r · v without materializing M_r, exploiting
// the prefix structure of the rows: the row for connection (j, y) sums v
// over all full histories extending y whose round-len(y) entry contains j.
// Using bottom-up prefix sums the whole product costs O(k · (2^k-1)^{r+1})
// — linear in the vector length — whereas the dense matrix has
// ~(2^k-1)^{2(r+1)} entries. This lets tests verify M_r k_r = 0 at depths
// far beyond what elimination or even dense storage can reach.
func StructuredMulVec(r, k int, v linalg.Vector) (linalg.Vector, error) {
	if r < 0 {
		return nil, fmt.Errorf("kernel: negative round %d", r)
	}
	if k < 1 || k > multigraph.MaxK {
		return nil, fmt.Errorf("kernel: alphabet size %d out of range [1,%d]", k, multigraph.MaxK)
	}
	cols := Cols(r, k)
	if len(v) != cols {
		return nil, fmt.Errorf("kernel: vector length %d, want %d", len(v), cols)
	}
	base := multigraph.SymbolCount(k)
	// prefix[t][yIdx] = Σ v over histories (length r+1) with the given
	// length-t prefix. Built top of the tree last: prefix[r+1] = v.
	levels := make([][]*big.Int, r+2)
	levels[r+1] = make([]*big.Int, cols)
	for i := range v {
		levels[r+1][i] = new(big.Int).Set(v[i])
	}
	for t := r; t >= 0; t-- {
		size := multigraph.HistoryCount(t, k)
		cur := make([]*big.Int, size)
		for y := 0; y < size; y++ {
			acc := new(big.Int)
			for s := 0; s < base; s++ {
				acc.Add(acc, levels[t+1][y*base+s])
			}
			cur[y] = acc
		}
		levels[t] = cur
	}
	out := linalg.NewVector(Rows(r, k))
	// Row (j, y) with len(y) = t: Σ over symbols X containing j of the
	// prefix sum at y·X (level t+1).
	idx := 0
	for t := 0; t <= r; t++ {
		size := multigraph.HistoryCount(t, k)
		for j := 1; j <= k; j++ {
			for y := 0; y < size; y++ {
				acc := out[idx]
				for s := 0; s < base; s++ {
					if multigraph.SymbolFromIndex(s).Has(j) {
						acc.Add(acc, levels[t+1][y*base+s])
					}
				}
				idx++
			}
		}
	}
	return out, nil
}
