package kernel

import (
	"fmt"
	"math"
	"strconv"

	"anondyn/internal/multigraph"
	anonobs "anondyn/internal/obs"
)

// solverIndexLimit is the longest node-state history the incremental solver
// keys by int64 index: 3^39 < MaxInt64 < 3^40, so histories through length
// 39 have exact base-3 indices. Past it the sparse layer spills to canonical
// History.Key strings. A package variable so tests can force the spill at
// tiny lengths.
var solverIndexLimit = 39

// obsPair aggregates one state's per-label counts within a round's
// observation: o1/o2 are the numbers of label-1/label-2 edges from nodes in
// that state.
type obsPair struct{ o1, o2 int }

// IncrementalSolver maintains the leader's count interval across rounds
// without re-walking the whole state tree. Conceptually round t has one
// linear form a + b·c0 per node state (3^{t+1} of them, the columns of the
// paper's M_t); the solver exploits two structural facts to keep its working
// set tiny:
//
//   - Only states descending from previously observed states can ever hold
//     nodes — every node is connected to the leader every round, so states
//     the observation skips are provably unpopulated, and so are their whole
//     subtrees. Their forms still constrain the interval, but they evolve
//     observation-independently: a form (a, b) branches into (a, b) twice
//     (children ∘{1}, ∘{2}) and (-a, -b) once (child ∘{1,2}).
//
//   - Duplicate forms are therefore massively redundant, and the Lemma-3
//     kernel structure needs only the set of forms, not which state carries
//     which. The solver keeps an exact `sparse` map for the (few) states the
//     next observation may mention and coalesces everything else into `bulk`
//     multiplicity classes with the doubling rule
//     new[g] = 2·old[g] + old[-g].
//
// This turns the old O(3^{t+1}) AddRound into O(observed states), which is
// bounded by 3·|W|. Intervals are bit-for-bit those of the batch solver
// (SolveCountInterval) on every observation sequence a real execution can
// produce; an observation naming a provably unpopulated state — which no
// execution produces, and which the pre-coalescing solver would silently
// fold in — now fails loudly.
//
// Protocol leaders (core.CountOnMultigraph, chainnet) use it to re-evaluate
// their uncertainty every round; the allocation-free hot path is
// AddRoundIndexed fed by multigraph.ObservationStream.
//
// The zero value is not usable; construct with NewIncrementalSolver.
type IncrementalSolver struct {
	rounds int
	total  int // R1(⊥) + R2(⊥); n = total - c0

	// sparse holds the forms of observable states, keyed by History.Index
	// while state length <= solverIndexLimit, then spilled to History.Key
	// strings (sparseStr, strMode). bulk coalesces every other form into
	// multiplicities, saturating at MaxInt (only the form set matters for
	// the interval). The *Next twins are double buffers swapped each round
	// so steady-state AddRounds allocate nothing beyond amortized map
	// growth.
	sparse, sparseNext       map[int64]form
	sparseStr, sparseStrNext map[string]form
	strMode                  bool
	bulk, bulkNext           map[form]int

	agg    map[int64]obsPair // per-round observation aggregation (reused)
	aggStr map[string]obsPair

	// obsRounds/obsRoundNS report per-round solve work through the
	// process-wide collector; both nil (free) when the process is
	// unobserved. Resolved once at construction, never per round.
	obsRounds  *anonobs.Counter
	obsRoundNS *anonobs.Histogram
}

// NewIncrementalSolver returns a solver with no observations yet.
func NewIncrementalSolver() *IncrementalSolver {
	s := &IncrementalSolver{
		sparse:     make(map[int64]form),
		sparseNext: make(map[int64]form),
		bulk:       make(map[form]int),
		bulkNext:   make(map[form]int),
		agg:        make(map[int64]obsPair),
	}
	s.obsRounds, s.obsRoundNS = incrementalMetrics()
	return s
}

// Rounds returns the number of observations added.
func (s *IncrementalSolver) Rounds() int { return s.rounds }

// AddRound incorporates the observation of the next round (round index
// s.Rounds()) and returns the updated interval of consistent sizes.
// Entries with labels outside {1, 2}, malformed state keys, or state keys
// of the wrong length are ignored, exactly as the pre-coalescing solver's
// key lookups never matched them.
func (s *IncrementalSolver) AddRound(obs multigraph.Observation) (Interval, error) {
	start := s.obsRoundNS.Start()
	defer func() {
		s.obsRounds.Inc()
		s.obsRoundNS.Stop(start)
	}()
	if !s.strMode {
		clear(s.agg)
		for key, n := range obs {
			if key.Label != 1 && key.Label != 2 {
				continue
			}
			y, err := historyFromKey(key.StateKey, s.rounds)
			if err != nil {
				continue
			}
			si := int64(y.Index(2))
			p := s.agg[si]
			if key.Label == 1 {
				p.o1 += n
			} else {
				p.o2 += n
			}
			s.agg[si] = p
		}
	} else {
		clear(s.aggStr)
		for key, n := range obs {
			if key.Label != 1 && key.Label != 2 {
				continue
			}
			if _, err := historyFromKey(key.StateKey, s.rounds); err != nil {
				continue
			}
			p := s.aggStr[key.StateKey]
			if key.Label == 1 {
				p.o1 += n
			} else {
				p.o2 += n
			}
			s.aggStr[key.StateKey] = p
		}
	}
	return s.addRoundAgg()
}

// AddRoundIndexed is AddRound for indexed observations (the output of
// multigraph.ObservationStream.Next): the hot path used by the core round
// loop, allocation-free in steady state. Duplicate entries for a state are
// summed. Once the solver has spilled to string keys (state length beyond
// solverIndexLimit) indexed observations can no longer address states and
// the caller must switch to AddRound.
func (s *IncrementalSolver) AddRoundIndexed(entries []multigraph.IndexedObsEntry) (Interval, error) {
	start := s.obsRoundNS.Start()
	defer func() {
		s.obsRounds.Inc()
		s.obsRoundNS.Stop(start)
	}()
	if s.strMode {
		return Interval{}, fmt.Errorf("kernel: indexed observations unavailable past state length %d; use AddRound", solverIndexLimit)
	}
	clear(s.agg)
	for _, e := range entries {
		p := s.agg[e.State]
		p.o1 += e.Count1
		p.o2 += e.Count2
		s.agg[e.State] = p
	}
	return s.addRoundAgg()
}

// addRoundAgg folds the aggregated observation of round s.rounds (in s.agg
// or s.aggStr) into the solver state.
func (s *IncrementalSolver) addRoundAgg() (Interval, error) {
	// Children outgrow the int64 index at this round? Expand into string
	// keys and stay there.
	spill := !s.strMode && s.rounds+1 > solverIndexLimit

	if s.rounds == 0 {
		// Round 0 is the generic step applied to the single virtual parent
		// ⊥ with form total - c0 (evaluating to |W|): its children are the
		// paper's initial forms R1-c0, R2-c0, c0.
		p := s.agg[0]
		s.total = p.o1 + p.o2
		s.sparse[0] = form{a: s.total, b: -1}
	}

	// Expand observed sparse states exactly; evict the rest into bulk.
	matched := 0
	if !s.strMode {
		for si, f := range s.sparse {
			if p, ok := s.agg[si]; ok && (p.o1 != 0 || p.o2 != 0) {
				matched++
				c0, c1, c2 := childForms(f, p)
				if !spill {
					s.sparseNext[3*si+0] = c0
					s.sparseNext[3*si+1] = c1
					s.sparseNext[3*si+2] = c2
				} else {
					key := multigraph.HistoryFromIndex(int(si), s.rounds, 2).Key()
					s.spillStr(key, c0, c1, c2)
				}
			} else {
				s.evict(f)
			}
		}
	} else {
		for key, f := range s.sparseStr {
			if p, ok := s.aggStr[key]; ok && (p.o1 != 0 || p.o2 != 0) {
				matched++
				c0, c1, c2 := childForms(f, p)
				s.spillStr(key, c0, c1, c2)
			} else {
				s.evict(f)
			}
		}
	}
	if err := s.checkOrphans(matched); err != nil {
		return Interval{}, err
	}

	// Unpopulated classes branch observation-independently: twice into
	// themselves, once into their reflection.
	for g, m := range s.bulk {
		s.bulkNext[g] = satAdd(s.bulkNext[g], satAdd(m, m))
		ng := form{a: -g.a, b: -g.b}
		s.bulkNext[ng] = satAdd(s.bulkNext[ng], m)
	}

	// Swap double buffers.
	if s.strMode || spill {
		s.sparseStr, s.sparseStrNext = s.sparseStrNext, s.sparseStr
		clear(s.sparseStrNext)
		if spill {
			s.strMode = true
			clear(s.sparse)
			if s.aggStr == nil {
				s.aggStr = make(map[string]obsPair)
			}
		}
	} else {
		s.sparse, s.sparseNext = s.sparseNext, s.sparse
		clear(s.sparseNext)
	}
	s.bulk, s.bulkNext = s.bulkNext, s.bulk
	clear(s.bulkNext)

	s.rounds++
	return s.Interval()
}

// childForms applies the paper's per-state recurrence: a parent with form f
// (count of nodes in that state) and observed per-label counts p splits
// into children ∘{1}, ∘{2}, ∘{1,2} with counts f-o2, f-o1, o1+o2-f.
func childForms(f form, p obsPair) (form, form, form) {
	return form{a: f.a - p.o2, b: f.b},
		form{a: f.a - p.o1, b: f.b},
		form{a: p.o1 + p.o2 - f.a, b: -f.b}
}

// spillStr stores the three children of parent state `key` under canonical
// child keys.
func (s *IncrementalSolver) spillStr(key string, c0, c1, c2 form) {
	if s.sparseStrNext == nil {
		s.sparseStrNext = make(map[string]form)
	}
	s.sparseStrNext[childKey(key, 1)] = c0
	s.sparseStrNext[childKey(key, 2)] = c1
	s.sparseStrNext[childKey(key, 3)] = c2
}

// childKey extends a canonical History.Key with one label-set bitmask.
func childKey(parent string, mask int) string {
	d := strconv.Itoa(mask)
	if parent == "" {
		return d
	}
	return parent + "." + d
}

// evict moves an unobservable parent's children into bulk: two copies of
// the parent form, one of its reflection.
func (s *IncrementalSolver) evict(f form) {
	s.bulkNext[f] = satAdd(s.bulkNext[f], 2)
	nf := form{a: -f.a, b: -f.b}
	s.bulkNext[nf] = satAdd(s.bulkNext[nf], 1)
}

// checkOrphans errors if the observation named a state outside the sparse
// support: such a state provably holds zero nodes, so no execution emits
// it, and folding it in silently (as the pre-coalescing solver did) would
// corrupt the interval.
func (s *IncrementalSolver) checkOrphans(matched int) error {
	observed := 0
	if !s.strMode {
		for _, p := range s.agg {
			if p.o1 != 0 || p.o2 != 0 {
				observed++
			}
		}
		if matched == observed {
			return nil
		}
		for si, p := range s.agg {
			if (p.o1 != 0 || p.o2 != 0) && !s.inSparse(si) {
				return fmt.Errorf("kernel: round-%d observation names state index %d, which no consistent execution populates", s.rounds, si)
			}
		}
	} else {
		for _, p := range s.aggStr {
			if p.o1 != 0 || p.o2 != 0 {
				observed++
			}
		}
		if matched == observed {
			return nil
		}
		for key, p := range s.aggStr {
			if p.o1 != 0 || p.o2 != 0 {
				if _, ok := s.sparseStr[key]; !ok {
					return fmt.Errorf("kernel: round-%d observation names state %q, which no consistent execution populates", s.rounds, key)
				}
			}
		}
	}
	return fmt.Errorf("kernel: round-%d observation names an unpopulated state", s.rounds)
}

func (s *IncrementalSolver) inSparse(si int64) bool {
	_, ok := s.sparse[si]
	return ok
}

// satAdd returns a+b for non-negative operands, saturating at MaxInt.
func satAdd(a, b int) int {
	c := a + b
	if c < a {
		return math.MaxInt
	}
	return c
}

// Interval returns the current interval of consistent sizes. Before any
// observation it is unbounded.
func (s *IncrementalSolver) Interval() (Interval, error) {
	if s.rounds == 0 {
		return Interval{MinSize: 0, Unbounded: true}, nil
	}
	const unset = int(^uint(0) >> 1)
	lo, hi := 0, unset
	for _, f := range s.sparse {
		if f.b > 0 {
			if c := -f.a; c > lo {
				lo = c
			}
		} else if f.a < hi {
			hi = f.a
		}
	}
	for _, f := range s.sparseStr {
		if f.b > 0 {
			if c := -f.a; c > lo {
				lo = c
			}
		} else if f.a < hi {
			hi = f.a
		}
	}
	for f := range s.bulk {
		if f.b > 0 {
			if c := -f.a; c > lo {
				lo = c
			}
		} else if f.a < hi {
			hi = f.a
		}
	}
	if hi == unset {
		return Interval{}, fmt.Errorf("kernel: no upper constraint on c0 (malformed observations)")
	}
	if lo > hi {
		return Interval{Empty: true}, nil
	}
	return Interval{MinSize: s.total - hi, MaxSize: s.total - lo}, nil
}
