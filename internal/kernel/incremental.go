package kernel

import (
	"fmt"

	"anondyn/internal/multigraph"
	anonobs "anondyn/internal/obs"
)

// IncrementalSolver maintains the leader's count interval across rounds
// without re-walking the whole state tree: each AddRound extends the
// deepest level's linear forms in place, so processing round t costs
// O(3^{t+1}) instead of the O(3¹ + 3² + ... + 3^{t+1}) a from-scratch
// solve-per-round loop pays. Protocol leaders (core.CountOnMultigraph,
// chainnet) use it to re-evaluate their uncertainty every round.
//
// The zero value is not usable; construct with NewIncrementalSolver.
type IncrementalSolver struct {
	rounds int
	total  int // R1(⊥) + R2(⊥); n = total - c0
	forms  []form

	// obsRounds/obsRoundNS report per-round solve work through the
	// process-wide collector; both nil (free) when the process is
	// unobserved. Resolved once at construction, never per round.
	obsRounds  *anonobs.Counter
	obsRoundNS *anonobs.Histogram
}

// NewIncrementalSolver returns a solver with no observations yet.
func NewIncrementalSolver() *IncrementalSolver {
	s := &IncrementalSolver{}
	s.obsRounds, s.obsRoundNS = incrementalMetrics()
	return s
}

// Rounds returns the number of observations added.
func (s *IncrementalSolver) Rounds() int { return s.rounds }

// AddRound incorporates the observation of the next round (round index
// s.Rounds()) and returns the updated interval of consistent sizes.
func (s *IncrementalSolver) AddRound(obs multigraph.Observation) (Interval, error) {
	start := s.obsRoundNS.Start()
	defer func() {
		s.obsRounds.Inc()
		s.obsRoundNS.Stop(start)
	}()
	get := func(label int, y multigraph.History) int {
		return obs[multigraph.ObsKey{Label: label, StateKey: y.Key()}]
	}
	if s.rounds == 0 {
		r1 := get(1, multigraph.History{})
		r2 := get(2, multigraph.History{})
		s.total = r1 + r2
		s.forms = []form{
			{a: r1, b: -1},
			{a: r2, b: -1},
			{a: 0, b: +1},
		}
	} else {
		next := make([]form, 3*len(s.forms))
		for yi, f := range s.forms {
			y := multigraph.HistoryFromIndex(yi, s.rounds, 2)
			o1 := get(1, y)
			o2 := get(2, y)
			next[3*yi+0] = form{a: f.a - o2, b: f.b}
			next[3*yi+1] = form{a: f.a - o1, b: f.b}
			next[3*yi+2] = form{a: o1 + o2 - f.a, b: -f.b}
		}
		s.forms = next
	}
	s.rounds++
	return s.Interval()
}

// Interval returns the current interval of consistent sizes. Before any
// observation it is unbounded.
func (s *IncrementalSolver) Interval() (Interval, error) {
	if s.rounds == 0 {
		return Interval{MinSize: 0, Unbounded: true}, nil
	}
	const unset = int(^uint(0) >> 1)
	lo, hi := 0, unset
	for _, f := range s.forms {
		if f.b > 0 {
			if c := -f.a; c > lo {
				lo = c
			}
		} else {
			if f.a < hi {
				hi = f.a
			}
		}
	}
	if hi == unset {
		return Interval{}, fmt.Errorf("kernel: no upper constraint on c0 (malformed observations)")
	}
	if lo > hi {
		return Interval{Empty: true}, nil
	}
	return Interval{MinSize: s.total - hi, MaxSize: s.total - lo}, nil
}
