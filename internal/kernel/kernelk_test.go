package kernel

import (
	"math/big"
	"testing"
)

// TestClosedFormKernelKIsKernel is the defining check, via the independent
// structured multiply: M_r · k_r = 0 for every alphabet size k in {2,3,4}
// and every r the dense sizes allow. This is the general-k Lemma 3.
func TestClosedFormKernelKIsKernel(t *testing.T) {
	cases := []struct{ k, maxR int }{{2, 4}, {3, 2}, {4, 1}}
	for _, c := range cases {
		for r := 0; r <= c.maxR; r++ {
			kv, err := ClosedFormKernelK(r, c.k)
			if err != nil {
				t.Fatalf("k=%d r=%d: %v", c.k, r, err)
			}
			prod, err := StructuredMulVec(r, c.k, kv)
			if err != nil {
				t.Fatalf("k=%d r=%d: %v", c.k, r, err)
			}
			for i, x := range prod {
				if x.Sign() != 0 {
					t.Fatalf("k=%d r=%d: (M_r k_r)[%d] = %s, want 0", c.k, r, i, x)
				}
			}
		}
	}
}

// TestClosedFormKernelKMatchesK2 pins the specialization: at k = 2 the
// general construction must agree entrywise with both existing k = 2 forms.
func TestClosedFormKernelKMatchesK2(t *testing.T) {
	for r := 0; r <= 5; r++ {
		want := ClosedFormKernel(r)
		wantSigns := ClosedFormKernelSigns(r)
		got, err := ClosedFormKernelK(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		gotSigns, err := ClosedFormKernelSignsK(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || len(gotSigns) != len(wantSigns) {
			t.Fatalf("r=%d: length mismatch", r)
		}
		for i := range want {
			if want[i].Cmp(got[i]) != 0 || wantSigns[i] != gotSigns[i] {
				t.Fatalf("r=%d entry %d: general-k %s/%d, k=2 closed form %s/%d",
					r, i, got[i], gotSigns[i], want[i], wantSigns[i])
			}
		}
	}
}

// TestKernelSumsK checks the Lemma-4 sums against literal counts of the sign
// vector, and the k = 2 case against the existing closed forms.
func TestKernelSumsK(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for r := 0; r <= 2; r++ {
			signs, err := ClosedFormKernelSignsK(r, k)
			if err != nil {
				t.Fatal(err)
			}
			neg, pos := 0, 0
			for _, s := range signs {
				if s < 0 {
					neg++
				} else {
					pos++
				}
			}
			wantNeg, err := KernelSumNegativeK(r, k)
			if err != nil {
				t.Fatal(err)
			}
			wantPos, err := KernelSumPositiveK(r, k)
			if err != nil {
				t.Fatal(err)
			}
			if wantNeg.Cmp(big.NewInt(int64(neg))) != 0 || wantPos.Cmp(big.NewInt(int64(pos))) != 0 {
				t.Errorf("k=%d r=%d: sums (%s,%s), literal counts (%d,%d)", k, r, wantNeg, wantPos, neg, pos)
			}
		}
	}
	for r := 0; r <= 6; r++ {
		neg, err := KernelSumNegativeK(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		if neg.Cmp(KernelSumNegative(r)) != 0 {
			t.Errorf("r=%d: KernelSumNegativeK(·,2) = %s, want %s", r, neg, KernelSumNegative(r))
		}
	}
}

// TestKernelKRejectsBadParams covers validation.
func TestKernelKRejectsBadParams(t *testing.T) {
	if _, err := ClosedFormKernelSignsK(-1, 2); err == nil {
		t.Error("negative round accepted")
	}
	if _, err := ClosedFormKernelSignsK(1, 1); err == nil {
		t.Error("k=1 accepted (single symbol has no kernel)")
	}
	if _, err := KernelSumNegativeK(0, 1); err == nil {
		t.Error("k=1 accepted by kernel sum")
	}
}
