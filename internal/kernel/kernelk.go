package kernel

import (
	"fmt"
	"math/big"

	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

// General-k closed-form kernel (the ℳ(DBL)ₖ generalization of Lemma 3): the
// sign of a history is the product of its symbol signs, +1 for odd-sized
// label sets and -1 for even-sized ones. Each label j appears in equally
// many odd- and even-sized sets, so every row (j, y) of M_r sums the signs
// of a full symbol extension to zero — M_r k_r = 0 for every k >= 2, with
// k = 2 recovering ClosedFormKernel exactly. StructuredMulVec provides the
// independent verification path used by the tests.

// ClosedFormKernelSignsK returns the general-k kernel of M_r as ±1 signs,
// indexed by history index over length r+1. k = 2 agrees entrywise with
// ClosedFormKernelSigns.
func ClosedFormKernelSignsK(r, k int) ([]int8, error) {
	if r < 0 {
		return nil, fmt.Errorf("kernel: negative round %d", r)
	}
	return multigraph.HistorySigns(r+1, k)
}

// ClosedFormKernelK is ClosedFormKernelSignsK as a big.Int vector, for
// callers doing exact linear algebra against Matrix(r, k).
func ClosedFormKernelK(r, k int) (linalg.Vector, error) {
	signs, err := ClosedFormKernelSignsK(r, k)
	if err != nil {
		return nil, err
	}
	vec := linalg.NewVector(len(signs))
	for i, s := range signs {
		vec[i].SetInt64(int64(s))
	}
	return vec, nil
}

// KernelSumNegativeK returns Σ⁻k_r for alphabet size k: with B = 2^k - 1
// symbols, (B^{r+1} - 1)/2 — the number of processes the adversary needs to
// keep sizes n and n+1 indistinguishable through round r on ℳ(DBL)ₖ. The
// count follows from Σ_h sign(h) = 1: positives exceed negatives by exactly
// one among the B^{r+1} histories.
func KernelSumNegativeK(r, k int) (*big.Int, error) {
	if r < 0 || k < 2 || k > multigraph.MaxK {
		return nil, fmt.Errorf("kernel: kernel sum needs r >= 0 and k in [2,%d], got r=%d k=%d",
			multigraph.MaxK, r, k)
	}
	b := int64(multigraph.SymbolCount(k))
	p := new(big.Int).Exp(big.NewInt(b), big.NewInt(int64(r+1)), nil)
	p.Sub(p, big.NewInt(1))
	return p.Rsh(p, 1), nil
}

// KernelSumPositiveK returns Σ⁺k_r = (B^{r+1} + 1)/2 for B = 2^k - 1.
func KernelSumPositiveK(r, k int) (*big.Int, error) {
	neg, err := KernelSumNegativeK(r, k)
	if err != nil {
		return nil, err
	}
	return neg.Add(neg, big.NewInt(1)), nil
}
