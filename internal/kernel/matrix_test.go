package kernel

import (
	"math"
	"math/big"
	"testing"

	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

func TestDimensions(t *testing.T) {
	cases := []struct {
		r, k       int
		rows, cols int
	}{
		{0, 2, 2, 3},   // M_0: 2x3 (paper Eq. 2)
		{1, 2, 8, 9},   // M_1: 8x9 (paper Eq. 4/5)
		{2, 2, 26, 27}, // rows = 2(1+3+9)
		{0, 3, 3, 7},
		{1, 3, 24, 49},
	}
	for _, tc := range cases {
		if got := Rows(tc.r, tc.k); got != tc.rows {
			t.Errorf("Rows(%d,%d) = %d, want %d", tc.r, tc.k, got, tc.rows)
		}
		if got := Cols(tc.r, tc.k); got != tc.cols {
			t.Errorf("Cols(%d,%d) = %d, want %d", tc.r, tc.k, got, tc.cols)
		}
	}
}

func TestDimensionsSaturateAtMaxInt(t *testing.T) {
	// Cols(r,2) = 3^{r+1}: r = 38 is the last exact power (3^39), r = 39
	// the first saturated one. Rows sums k·3^i and crosses MaxInt at the
	// same order of magnitude; before the guards both wrapped.
	exact := 1
	for i := 0; i < 39; i++ {
		exact *= 3
	}
	if got := Cols(38, 2); got != exact {
		t.Fatalf("Cols(38,2) = %d, want exact 3^39 = %d", got, exact)
	}
	for _, r := range []int{39, 40, 100} {
		if got := Cols(r, 2); got != math.MaxInt {
			t.Errorf("Cols(%d,2) = %d, want MaxInt saturation", r, got)
		}
		if got := Rows(r, 2); got != math.MaxInt {
			t.Errorf("Rows(%d,2) = %d, want MaxInt saturation", r, got)
		}
	}
	// Exact just below the boundary: Rows(38,2) = 2·(3^39-1)/2 = 3^39 - 1.
	if got := Rows(38, 2); got != exact-1 {
		t.Fatalf("Rows(38,2) = %d, want 3^39 - 1 = %d", got, exact-1)
	}
	for r := 0; r < 45; r++ {
		if Rows(r+1, 2) < Rows(r, 2) || Cols(r+1, 2) < Cols(r, 2) {
			t.Fatalf("dimensions not monotone at r=%d", r)
		}
	}
}

func TestMatrixM0MatchesPaper(t *testing.T) {
	// M_0 = [1 0 1; 0 1 1] (paper Equation 2).
	m, err := Matrix(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.MustFromInts([][]int{{1, 0, 1}, {0, 1, 1}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j).Cmp(want.At(i, j)) != 0 {
				t.Fatalf("M_0 =\n%swant\n%s", m, want)
			}
		}
	}
}

func TestMatrixM1MatchesPaper(t *testing.T) {
	// The paper's Equation 5 gives M_1 explicitly.
	want := linalg.MustFromInts([][]int{
		{1, 1, 1, 0, 0, 0, 1, 1, 1},
		{0, 0, 0, 1, 1, 1, 1, 1, 1},
		{1, 0, 1, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 1, 0, 1, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 1, 0, 1},
		{0, 1, 1, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 1, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 0, 1, 1},
	})
	m, err := Matrix(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 8 || m.Cols() != 9 {
		t.Fatalf("M_1 is %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 9; j++ {
			if m.At(i, j).Cmp(want.At(i, j)) != 0 {
				t.Fatalf("M_1 mismatch at (%d,%d):\n%s", i, j, m)
			}
		}
	}
}

func TestMatrixErrors(t *testing.T) {
	if _, err := Matrix(-1, 2); err == nil {
		t.Fatal("negative round should error")
	}
	if _, err := Matrix(0, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestRowIndexErrors(t *testing.T) {
	if _, err := RowIndex(1, 2, 0, multigraph.History{}); err == nil {
		t.Fatal("label 0 should error")
	}
	if _, err := RowIndex(0, 2, 1, multigraph.History{multigraph.SetOf(1)}); err == nil {
		t.Fatal("state longer than round should error")
	}
}

// Lemma 2: rank(M_r) equals the number of rows, so the kernel is
// one-dimensional (cols - rows = 1).
func TestLemma2KernelDimension(t *testing.T) {
	for r := 0; r <= 3; r++ {
		m, err := Matrix(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rank := m.Rank(); rank != m.Rows() {
			t.Fatalf("r=%d: rank %d, want full row rank %d", r, rank, m.Rows())
		}
		basis := m.KernelBasis()
		if len(basis) != 1 {
			t.Fatalf("r=%d: kernel dimension %d, want 1", r, len(basis))
		}
	}
}

// Lemma 3: the eliminated kernel equals the closed form (up to sign), and
// the closed form satisfies the recursion k_r = [k_{r-1} k_{r-1} -k_{r-1}].
func TestLemma3ClosedFormMatchesElimination(t *testing.T) {
	for r := 0; r <= 3; r++ {
		m, err := Matrix(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := m.KernelBasis()[0]
		want := ClosedFormKernel(r)
		if !got.Equal(want) && !got.Equal(want.Neg()) {
			t.Fatalf("r=%d: eliminated kernel %s != closed form ±%s", r, got, want)
		}
	}
}

func TestLemma3Recursion(t *testing.T) {
	for r := 1; r <= 6; r++ {
		prev := ClosedFormKernel(r - 1)
		want := prev.Append(prev).Append(prev.Neg())
		if !ClosedFormKernel(r).Equal(want) {
			t.Fatalf("r=%d: recursion k_r = [k_{r-1} k_{r-1} -k_{r-1}] fails", r)
		}
	}
}

func TestKernelPaperK1(t *testing.T) {
	// k_1 = [1 1 -1 1 1 -1 -1 -1 1] as printed in the paper.
	want := linalg.VecFromInts(1, 1, -1, 1, 1, -1, -1, -1, 1)
	if got := ClosedFormKernel(1); !got.Equal(want) {
		t.Fatalf("k_1 = %s, want %s", got, want)
	}
}

// M_r k_r = 0 for larger r than dense elimination can reach: the product is
// cheap even when elimination is not.
func TestKernelInNullspaceLargeR(t *testing.T) {
	for r := 0; r <= 5; r++ {
		m, err := Matrix(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := m.MulVec(ClosedFormKernel(r))
		if err != nil {
			t.Fatal(err)
		}
		if !prod.IsZero() {
			t.Fatalf("r=%d: M_r k_r != 0", r)
		}
	}
}

// Lemma 4: Σk_r = 1, Σ⁻k_r = ½(3^{r+1}+1) - 1, Σ⁺k_r = ½(3^{r+1}+1),
// verified against the explicit vector for small r and in closed form for
// large r.
func TestLemma4Sums(t *testing.T) {
	for r := 0; r <= 8; r++ {
		k := ClosedFormKernel(r)
		if s := k.Sum(); s.Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("r=%d: Σk = %s, want 1", r, s)
		}
		if got, want := k.SumNegative(), KernelSumNegative(r); got.Cmp(want) != 0 {
			t.Fatalf("r=%d: Σ⁻k = %s, want %s", r, got, want)
		}
		if got, want := k.SumPositive(), KernelSumPositive(r); got.Cmp(want) != 0 {
			t.Fatalf("r=%d: Σ⁺k = %s, want %s", r, got, want)
		}
	}
	// Closed forms agree with the paper's examples: Σ⁺k_1 = 5, Σ⁻k_1 = 4.
	if KernelSumPositive(1).Int64() != 5 || KernelSumNegative(1).Int64() != 4 {
		t.Fatal("Lemma 4 closed forms disagree with the paper's r=1 example")
	}
}

// The fundamental identity: for any multigraph, M_r (true counts) equals
// the observation vector derived from the leader's view.
func TestObservationIdentity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mg, err := multigraph.Random(2, 6, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 2; r++ {
			m, err := Matrix(r, 2)
			if err != nil {
				t.Fatal(err)
			}
			s, err := TrueSolutionVector(mg, r)
			if err != nil {
				t.Fatal(err)
			}
			view, err := mg.LeaderView(r + 1)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := ObservationVector(view, r, 2)
			if err != nil {
				t.Fatal(err)
			}
			prod, err := m.MulVec(s)
			if err != nil {
				t.Fatal(err)
			}
			if !prod.Equal(obs) {
				t.Fatalf("seed=%d r=%d: M_r s != m_r\nM s = %s\nm   = %s", seed, r, prod, obs)
			}
		}
	}
}

func TestObservationVectorErrors(t *testing.T) {
	mg, err := multigraph.Random(2, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	view, err := mg.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ObservationVector(view, 1, 2); err == nil {
		t.Fatal("view shorter than r+1 should error")
	}
}

func TestHistoryFromKey(t *testing.T) {
	h := multigraph.History{multigraph.SetOf(1), multigraph.SetOf(1, 2)}
	back, err := historyFromKey(h.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Fatalf("round trip = %v, want %v", back, h)
	}
	if _, err := historyFromKey("", 0); err != nil {
		t.Fatalf("empty key for length 0: %v", err)
	}
	for _, bad := range []struct {
		key  string
		want int
	}{
		{"", 1},
		{"x", 1},
		{"1.", 2},
		{"1", 2},
		{".1", 2},
	} {
		if _, err := historyFromKey(bad.key, bad.want); err == nil {
			t.Fatalf("historyFromKey(%q,%d) should error", bad.key, bad.want)
		}
	}
}

func TestTrueSolutionVectorError(t *testing.T) {
	mg, err := multigraph.Random(2, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrueSolutionVector(mg, 5); err == nil {
		t.Fatal("round beyond horizon should error")
	}
}
