package kernel

import "anondyn/internal/obs"

// Solver instrumentation reports through the process-wide collector
// (obs.Global): the kernel solvers sit at the bottom of every protocol
// stack — counting trials, sweep jobs, the experiment suite — with no
// plumbing path for a per-run collector. Unobserved processes (no
// -metrics/-pprof) pay one nil check per solve, nothing per round.

// solveCalls returns the full-view solve counter, nil when unobserved.
func solveCalls() *obs.Counter {
	if col := obs.Global(); col != nil {
		return col.Counter(obs.KernelSolverCalls)
	}
	return nil
}

// incrementalMetrics returns the per-round counter and wall-time histogram
// for the incremental solver, nil handles when unobserved. Resolved once
// per solver (in NewIncrementalSolver), never per round.
func incrementalMetrics() (*obs.Counter, *obs.Histogram) {
	col := obs.Global()
	if col == nil {
		return nil, nil
	}
	return col.Counter(obs.KernelRounds), col.Histogram(obs.KernelRoundNS)
}
