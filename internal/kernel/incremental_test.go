package kernel

import (
	"testing"

	"anondyn/internal/multigraph"
)

func TestIncrementalMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		mg, err := multigraph.Random(2, int(2+seed%8), 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		inc := NewIncrementalSolver()
		for rounds := 1; rounds <= 5; rounds++ {
			view := mustView(t, mg, rounds)
			got, err := inc.AddRound(view[rounds-1])
			if err != nil {
				t.Fatal(err)
			}
			want, err := SolveCountInterval(view)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed=%d rounds=%d: incremental %v != batch %v", seed, rounds, got, want)
			}
		}
	}
}

func TestIncrementalEmptyUnbounded(t *testing.T) {
	inc := NewIncrementalSolver()
	iv, err := inc.Interval()
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Unbounded {
		t.Fatalf("pre-observation interval = %v", iv)
	}
	if inc.Rounds() != 0 {
		t.Fatalf("Rounds = %d", inc.Rounds())
	}
}

func TestIncrementalDetectsInconsistency(t *testing.T) {
	inc := NewIncrementalSolver()
	if _, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: multigraph.History{}.Key()}: 1,
	}); err != nil {
		t.Fatal(err)
	}
	iv, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: multigraph.History{multigraph.SetOf(2)}.Key()}: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Empty {
		t.Fatalf("inconsistent observations gave %v", iv)
	}
}

func TestIncrementalWorstCaseTrajectory(t *testing.T) {
	// The incremental intervals along a worst-case schedule shrink and
	// collapse exactly when the batch solver says so.
	mg, err := multigraph.FromHistoryCounts(2, 2, []int{0, 0, 1, 0, 0, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncrementalSolver()
	view := mustView(t, mg, 2)
	iv1, err := inc.AddRound(view[0])
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := inc.AddRound(view[1])
	if err != nil {
		t.Fatal(err)
	}
	if iv1.Unique() || iv2.Unique() {
		t.Fatalf("Figure 4 schedule should stay ambiguous: %v %v", iv1, iv2)
	}
	if iv2.Width() > iv1.Width() {
		t.Fatalf("interval widened: %v -> %v", iv1, iv2)
	}
}
