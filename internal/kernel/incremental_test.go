package kernel

import (
	"testing"

	"anondyn/internal/multigraph"
)

func TestIncrementalMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		mg, err := multigraph.Random(2, int(2+seed%8), 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		inc := NewIncrementalSolver()
		for rounds := 1; rounds <= 5; rounds++ {
			view := mustView(t, mg, rounds)
			got, err := inc.AddRound(view[rounds-1])
			if err != nil {
				t.Fatal(err)
			}
			want, err := SolveCountInterval(view)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed=%d rounds=%d: incremental %v != batch %v", seed, rounds, got, want)
			}
		}
	}
}

func TestIncrementalEmptyUnbounded(t *testing.T) {
	inc := NewIncrementalSolver()
	iv, err := inc.Interval()
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Unbounded {
		t.Fatalf("pre-observation interval = %v", iv)
	}
	if inc.Rounds() != 0 {
		t.Fatalf("Rounds = %d", inc.Rounds())
	}
}

func TestIncrementalDetectsInconsistency(t *testing.T) {
	inc := NewIncrementalSolver()
	if _, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: multigraph.History{}.Key()}: 1,
	}); err != nil {
		t.Fatal(err)
	}
	iv, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: multigraph.History{multigraph.SetOf(2)}.Key()}: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Empty {
		t.Fatalf("inconsistent observations gave %v", iv)
	}
}

// TestIncrementalIndexedMatchesString drives one solver through
// AddRoundIndexed (fed by an ObservationStream) and a twin through the
// string-keyed AddRound on the same multigraphs: the intervals must be
// identical at every round.
func TestIncrementalIndexedMatchesString(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		mg, err := multigraph.Random(2, int(2+seed%8), 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := mg.NewObservationStream()
		if err != nil {
			t.Fatal(err)
		}
		fast := NewIncrementalSolver()
		slow := NewIncrementalSolver()
		for r := 0; r < 6; r++ {
			entries, err := stream.Next()
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.AddRoundIndexed(entries)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := mg.LeaderObservation(r)
			if err != nil {
				t.Fatal(err)
			}
			want, err := slow.AddRound(obs)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed=%d round=%d: indexed %v != string %v", seed, r, got, want)
			}
		}
	}
}

// TestIncrementalSpillMode forces the int64-index capacity limit down to 2
// so the sparse layer spills to string keys after a few rounds, and checks
// that the spilled solver still matches the batch solver — and that
// AddRoundIndexed refuses further indexed input once spilled.
func TestIncrementalSpillMode(t *testing.T) {
	prev := solverIndexLimit
	solverIndexLimit = 2
	defer func() { solverIndexLimit = prev }()

	for seed := int64(0); seed < 10; seed++ {
		mg, err := multigraph.Random(2, int(2+seed%6), 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		inc := NewIncrementalSolver()
		for rounds := 1; rounds <= 6; rounds++ {
			view := mustView(t, mg, rounds)
			got, err := inc.AddRound(view[rounds-1])
			if err != nil {
				t.Fatal(err)
			}
			want, err := SolveCountInterval(view)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed=%d rounds=%d: spilled incremental %v != batch %v", seed, rounds, got, want)
			}
		}
		if !inc.strMode {
			t.Fatalf("seed=%d: solver did not spill past limit %d (rounds=%d)", seed, solverIndexLimit, inc.Rounds())
		}
		if _, err := inc.AddRoundIndexed(nil); err == nil {
			t.Fatal("AddRoundIndexed succeeded in string mode; want capacity error")
		}
	}
}

// TestIncrementalOrphanObservation checks the loud-failure contract: an
// observation naming a state the previous rounds prove unpopulated is an
// error, not a silently folded-in constraint.
func TestIncrementalOrphanObservation(t *testing.T) {
	key := func(sets ...multigraph.LabelSet) string {
		return multigraph.History(sets).Key()
	}
	inc := NewIncrementalSolver()
	// Round 0: two nodes on label 1 at the root state.
	if _, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: key()}: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// Round 1: both nodes moved to state {1}; states {2} and {1,2} are now
	// provably unpopulated, along with their whole subtrees.
	if _, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: key(multigraph.SetOf(1))}: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// Round 2: an observation from a child of the evicted state {2}.
	_, err := inc.AddRound(multigraph.Observation{
		{Label: 1, StateKey: key(multigraph.SetOf(2), multigraph.SetOf(1))}: 1,
	})
	if err == nil {
		t.Fatal("observation of a provably unpopulated state was accepted")
	}
}

// TestAddRoundAllocCeiling locks the steady-state allocation budget of the
// solver's two ingestion paths. The per-round cost is isolated by running a
// short and a long trajectory over precomputed observations and dividing
// the difference, so construction and warm-up are excluded.
func TestAddRoundAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const shortR, longR = 4, 14
	mg, err := multigraph.Random(2, 16, longR, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot both observation encodings up front.
	stream, err := mg.NewObservationStream()
	if err != nil {
		t.Fatal(err)
	}
	indexed := make([][]multigraph.IndexedObsEntry, longR)
	strObs := make([]multigraph.Observation, longR)
	for r := 0; r < longR; r++ {
		entries, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		indexed[r] = append([]multigraph.IndexedObsEntry(nil), entries...)
		if strObs[r], err = mg.LeaderObservation(r); err != nil {
			t.Fatal(err)
		}
	}

	perRound := func(run func(rounds int)) float64 {
		short := testing.AllocsPerRun(20, func() { run(shortR) })
		long := testing.AllocsPerRun(20, func() { run(longR) })
		return (long - short) / float64(longR-shortR)
	}

	got := perRound(func(rounds int) {
		s := NewIncrementalSolver()
		for r := 0; r < rounds; r++ {
			if _, err := s.AddRoundIndexed(indexed[r]); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Steady-state AddRoundIndexed allocates only amortized map growth for
	// the sparse/bulk double buffers; 24/round is ~3x measured headroom.
	if got > 24 {
		t.Fatalf("AddRoundIndexed allocates %.1f/round, want <= 24", got)
	}

	got = perRound(func(rounds int) {
		s := NewIncrementalSolver()
		for r := 0; r < rounds; r++ {
			if _, err := s.AddRound(strObs[r]); err != nil {
				t.Fatal(err)
			}
		}
	})
	// AddRound additionally parses one History per observation class; the
	// observation here has <= 3*16 classes per round.
	if got > 160 {
		t.Fatalf("AddRound allocates %.1f/round, want <= 160", got)
	}
}

func TestIncrementalWorstCaseTrajectory(t *testing.T) {
	// The incremental intervals along a worst-case schedule shrink and
	// collapse exactly when the batch solver says so.
	mg, err := multigraph.FromHistoryCounts(2, 2, []int{0, 0, 1, 0, 0, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncrementalSolver()
	view := mustView(t, mg, 2)
	iv1, err := inc.AddRound(view[0])
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := inc.AddRound(view[1])
	if err != nil {
		t.Fatal(err)
	}
	if iv1.Unique() || iv2.Unique() {
		t.Fatalf("Figure 4 schedule should stay ambiguous: %v %v", iv1, iv2)
	}
	if iv2.Width() > iv1.Width() {
		t.Fatalf("interval widened: %v -> %v", iv1, iv2)
	}
}
