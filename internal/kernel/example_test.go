package kernel_test

import (
	"fmt"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// The paper's Figure 3 system of equations, solved: with m_0 = [2 2] the
// consistent sizes are 2, 3 and 4.
func ExampleSolveCountInterval() {
	m, err := multigraph.FromHistoryCounts(2, 1, []int{0, 0, 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	view, err := m.LeaderView(1)
	if err != nil {
		fmt.Println(err)
		return
	}
	iv, err := kernel.SolveCountInterval(view)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(iv)
	// Output: [2,4]
}

// The kernel vector k_1 as printed in the paper, with its Lemma 4 sums.
func ExampleClosedFormKernel() {
	k1 := kernel.ClosedFormKernel(1)
	fmt.Println(k1)
	fmt.Println(k1.Sum(), k1.SumPositive(), k1.SumNegative())
	// Output:
	// [1 1 -1 1 1 -1 -1 -1 1]
	// 1 5 4
}

// M_0 is the 2x3 matrix of the paper's Equation 2; its kernel is spanned
// by k_0 = [1 1 -1] (elimination returns the basis vector up to sign).
func ExampleMatrix() {
	m0, err := kernel.Matrix(0, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(m0)
	basis := m0.KernelBasis()
	fmt.Println(basis[0].Equal(kernel.ClosedFormKernel(0)) || basis[0].Neg().Equal(kernel.ClosedFormKernel(0)))
	// Output:
	// [1 0 1]
	// [0 1 1]
	// true
}

// The incremental solver tracks the interval as observations stream in.
func ExampleIncrementalSolver() {
	m, err := multigraph.FromHistoryCounts(2, 2, []int{0, 0, 1, 0, 0, 1, 1, 1, 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	solver := kernel.NewIncrementalSolver()
	for r := 0; r < 2; r++ {
		obs, err := m.LeaderObservation(r)
		if err != nil {
			fmt.Println(err)
			return
		}
		iv, err := solver.AddRound(obs)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(iv)
	}
	// Output:
	// [3,6]
	// [4,5]
}
