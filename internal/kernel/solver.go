package kernel

import (
	"fmt"

	"anondyn/internal/multigraph"
)

// Interval is the set of network sizes |W| consistent with a leader view in
// the ℳ(DBL)₂ family. The consistent sizes always form a contiguous integer
// interval because the solution space of m_r = M_r s is a line in direction
// k_r with Σk_r = 1 (Lemmas 2-4).
type Interval struct {
	// MinSize and MaxSize bound the consistent sizes, inclusive. Valid
	// only when neither Empty nor Unbounded is set.
	MinSize, MaxSize int
	// Empty means no configuration is consistent with the view (the view
	// did not come from a legal execution).
	Empty bool
	// Unbounded means every size >= MinSize is consistent (an empty view
	// constrains nothing beyond MinSize = 0).
	Unbounded bool
}

// Unique reports whether exactly one size is consistent — the condition
// under which the leader may output the count and terminate.
func (iv Interval) Unique() bool {
	return !iv.Empty && !iv.Unbounded && iv.MinSize == iv.MaxSize
}

// Width returns the number of consistent sizes (0 for Empty); it is
// meaningless for Unbounded intervals.
func (iv Interval) Width() int {
	if iv.Empty {
		return 0
	}
	return iv.MaxSize - iv.MinSize + 1
}

// String renders the interval.
func (iv Interval) String() string {
	switch {
	case iv.Empty:
		return "∅"
	case iv.Unbounded:
		return fmt.Sprintf("[%d,∞)", iv.MinSize)
	default:
		return fmt.Sprintf("[%d,%d]", iv.MinSize, iv.MaxSize)
	}
}

// form is a linear function a + b·c0 of the single free parameter c0 (the
// number of nodes whose round-0 label set was {1,2}); b is always ±1, the
// sign pattern of the kernel vector.
type form struct {
	a, b int
}

// SolveCountInterval computes the exact set of network sizes consistent
// with a leader view in ℳ(DBL)₂, in time O(3^t) for a t-round view.
//
// The solver operationalizes Section 4.2: the leader's observations force
// every unknown node-count linearly in one free parameter c0 — the paper's
// one-dimensional kernel — and the non-negativity of the deepest-level
// counts clips c0 to an interval. Each feasible c0 corresponds to a
// distinct total size (Σk_r = 1), so the count is determined exactly when
// the interval collapses to a point; by Theorem 1 that cannot happen before
// round ⌊log₃(2|W|+1)⌋ - 1, and for the adversarial configurations of
// Lemma 5 it happens exactly one round later.
func SolveCountInterval(view multigraph.LeaderView) (Interval, error) {
	solveCalls().Inc()
	t := len(view)
	if t == 0 {
		return Interval{MinSize: 0, Unbounded: true}, nil
	}
	obs := func(round, label int, y multigraph.History) int {
		return view[round][multigraph.ObsKey{Label: label, StateKey: y.Key()}]
	}
	// Level 1: histories of length 1 in canonical order {1}, {2}, {1,2}.
	r1 := obs(0, 1, multigraph.History{})
	r2 := obs(0, 2, multigraph.History{})
	total := r1 + r2 // n = total - c0
	forms := []form{
		{a: r1, b: -1}, // u[{1}]   = R1 - c0
		{a: r2, b: -1}, // u[{2}]   = R2 - c0
		{a: 0, b: +1},  // u[{1,2}] = c0
	}
	for round := 1; round < t; round++ {
		next := make([]form, 3*len(forms))
		for yi, f := range forms {
			y := multigraph.HistoryFromIndex(yi, round, 2)
			o1 := obs(round, 1, y)
			o2 := obs(round, 2, y)
			// Consistency forces c[y] = o1 + o2 - u[y]; the children are
			// then u[y·{1}] = u[y] - o2, u[y·{2}] = u[y] - o1,
			// u[y·{1,2}] = o1 + o2 - u[y].
			next[3*yi+0] = form{a: f.a - o2, b: f.b}
			next[3*yi+1] = form{a: f.a - o1, b: f.b}
			next[3*yi+2] = form{a: o1 + o2 - f.a, b: -f.b}
		}
		forms = next
	}
	// Non-negativity of the deepest-level counts clips c0; all shallower
	// counts are sums of deeper ones and need no separate constraints.
	const unset = int(^uint(0) >> 1) // max int
	lo, hi := 0, unset               // c0 >= 0 holds a priori (it is a count)
	for _, f := range forms {
		if f.b > 0 {
			if c := -f.a; c > lo {
				lo = c
			}
		} else {
			if f.a < hi {
				hi = f.a
			}
		}
	}
	if hi == unset {
		// Cannot happen for t >= 1: the all-{1,2} history has b = ±1 and
		// some descendant chain flips sign, but guard anyway.
		return Interval{}, fmt.Errorf("kernel: no upper constraint on c0 (malformed view)")
	}
	if lo > hi {
		return Interval{Empty: true}, nil
	}
	// n = total - c0 is decreasing in c0.
	return Interval{MinSize: total - hi, MaxSize: total - lo}, nil
}

// ForcedConfiguration materializes the unique node-count vector determined
// by the view and a choice of the free parameter c0: entry i is the number
// of nodes with the length-t history of index i. It errors if c0 is outside
// the feasible interval (some count would go negative).
//
// Together with multigraph.FromHistoryCounts this lets tests reconstruct,
// for every feasible size, an actual multigraph reproducing the observed
// view — the constructive content of Lemma 5.
func ForcedConfiguration(view multigraph.LeaderView, c0 int) ([]int, error) {
	t := len(view)
	if t == 0 {
		return nil, fmt.Errorf("kernel: cannot reconstruct from an empty view")
	}
	obs := func(round, label int, y multigraph.History) int {
		return view[round][multigraph.ObsKey{Label: label, StateKey: y.Key()}]
	}
	r1 := obs(0, 1, multigraph.History{})
	r2 := obs(0, 2, multigraph.History{})
	vals := []int{r1 - c0, r2 - c0, c0}
	for round := 1; round < t; round++ {
		next := make([]int, 3*len(vals))
		for yi, u := range vals {
			y := multigraph.HistoryFromIndex(yi, round, 2)
			o1 := obs(round, 1, y)
			o2 := obs(round, 2, y)
			next[3*yi+0] = u - o2
			next[3*yi+1] = u - o1
			next[3*yi+2] = o1 + o2 - u
		}
		vals = next
	}
	for i, v := range vals {
		if v < 0 {
			return nil, fmt.Errorf("kernel: c0=%d infeasible: count %d for history %d", c0, v, i)
		}
	}
	return vals, nil
}

// ConsistentSizes lists every network size consistent with the view, in
// increasing order. It errors on unbounded views (use SolveCountInterval to
// detect that case first).
func ConsistentSizes(view multigraph.LeaderView) ([]int, error) {
	iv, err := SolveCountInterval(view)
	if err != nil {
		return nil, err
	}
	if iv.Unbounded {
		return nil, fmt.Errorf("kernel: infinitely many sizes are consistent with an empty view")
	}
	if iv.Empty {
		return nil, nil
	}
	out := make([]int, 0, iv.Width())
	for n := iv.MinSize; n <= iv.MaxSize; n++ {
		out = append(out, n)
	}
	return out, nil
}
