package kernel

import (
	"testing"

	"anondyn/internal/multigraph"
)

// FuzzHistoryFromKey exercises the state-key parser with arbitrary input:
// it must never panic, and on accepted input it must round-trip.
func FuzzHistoryFromKey(f *testing.F) {
	f.Add("", 0)
	f.Add("1", 1)
	f.Add("1.3", 2)
	f.Add("x", 1)
	f.Add("1..2", 3)
	f.Add("999999999", 1)
	f.Fuzz(func(t *testing.T, key string, wantLen int) {
		if wantLen < 0 || wantLen > 16 {
			return
		}
		h, err := historyFromKey(key, wantLen)
		if err != nil {
			return
		}
		if len(h) != wantLen {
			t.Fatalf("accepted key %q with length %d, want %d", key, len(h), wantLen)
		}
		if h.Key() != key {
			t.Fatalf("round trip %q -> %q", key, h.Key())
		}
	})
}

// FuzzSolveCountInterval feeds the solver views derived from arbitrary
// byte-encoded multigraph schedules: the solver must never panic, never
// invert its interval, and always include the generating size.
func FuzzSolveCountInterval(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1})
	f.Add([]byte{2, 2, 2, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret raw as up to 4 nodes x up to 3 rounds of symbols.
		const maxNodes, rounds = 4, 3
		if len(raw) == 0 {
			return
		}
		w := int(raw[0])%maxNodes + 1
		if len(raw) < 1+w*rounds {
			return
		}
		labels := make([][]multigraph.LabelSet, w)
		for v := 0; v < w; v++ {
			row := make([]multigraph.LabelSet, rounds)
			for r := 0; r < rounds; r++ {
				row[r] = multigraph.SymbolFromIndex(int(raw[1+v*rounds+r]) % 3)
			}
			labels[v] = row
		}
		m, err := multigraph.New(2, labels)
		if err != nil {
			t.Fatalf("generator produced invalid multigraph: %v", err)
		}
		for rr := 1; rr <= rounds; rr++ {
			view, err := m.LeaderView(rr)
			if err != nil {
				t.Fatal(err)
			}
			iv, err := SolveCountInterval(view)
			if err != nil {
				t.Fatal(err)
			}
			if iv.Empty || iv.Unbounded {
				t.Fatalf("genuine view gave %v", iv)
			}
			if iv.MinSize > iv.MaxSize {
				t.Fatalf("inverted interval %v", iv)
			}
			if w < iv.MinSize || w > iv.MaxSize {
				t.Fatalf("true size %d outside %v", w, iv)
			}
		}
	})
}
