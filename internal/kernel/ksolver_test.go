package kernel

import (
	"errors"
	"testing"

	"anondyn/internal/multigraph"
)

func TestEnumerateSizesMatchesIntervalK2(t *testing.T) {
	// The general-k enumerator and the k=2 interval solver must agree on
	// the exact set of consistent sizes, across random small instances.
	for seed := int64(0); seed < 15; seed++ {
		mg, err := multigraph.Random(2, int(2+seed%4), 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		for rounds := 1; rounds <= 2; rounds++ {
			view := mustView(t, mg, rounds)
			want, err := ConsistentSizes(view)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EnumerateSizes(view, 2, EnumLimits{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d rounds=%d: enum %v vs interval %v", seed, rounds, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed=%d rounds=%d: enum %v vs interval %v", seed, rounds, got, want)
				}
			}
		}
	}
}

func TestEnumerateSizesK3ContainsTruth(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		mg, err := multigraph.Random(3, 3, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		view, err := mg.LeaderView(2)
		if err != nil {
			t.Fatal(err)
		}
		sizes, err := EnumerateSizes(view, 3, EnumLimits{})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range sizes {
			if n == mg.W() {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed=%d: true size %d not among %v", seed, mg.W(), sizes)
		}
	}
}

func TestEnumerateSizesK3MoreAmbiguousThanK2(t *testing.T) {
	// The Figure 3 observation pattern, lifted to k=3: every node shows
	// all three labels at round 0. The k=3 kernel has dimension 4, so the
	// consistent-size set must be at least as wide as k=2's.
	mg, err := multigraph.New(3, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2, 3)},
		{multigraph.SetOf(1, 2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	view, err := mg.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := EnumerateSizes(view, 3, EnumLimits{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes on {1,2,3} produce R_1=R_2=R_3=2; consistent sizes include
	// 2 ({1,2,3}x2), up to 6 ({1}x2,{2}x2,{3}x2).
	if len(sizes) < 3 {
		t.Fatalf("k=3 ambiguity too small: %v", sizes)
	}
	if sizes[0] != 2 || sizes[len(sizes)-1] != 6 {
		t.Fatalf("sizes = %v, want span [2..6]", sizes)
	}
}

func TestEnumerateSizesStarUnique(t *testing.T) {
	// All nodes on {1}: unique immediately, for any k.
	for k := 1; k <= 3; k++ {
		labels := make([][]multigraph.LabelSet, 4)
		for v := range labels {
			labels[v] = []multigraph.LabelSet{multigraph.SetOf(1)}
		}
		mg, err := multigraph.New(k, labels)
		if err != nil {
			t.Fatal(err)
		}
		view, err := mg.LeaderView(1)
		if err != nil {
			t.Fatal(err)
		}
		sizes, err := EnumerateSizes(view, k, EnumLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(sizes) != 1 || sizes[0] != 4 {
			t.Fatalf("k=%d: sizes = %v, want [4]", k, sizes)
		}
	}
}

func TestEnumerateSizesBudget(t *testing.T) {
	mg, err := multigraph.Random(2, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	view, err := mg.LeaderView(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = EnumerateSizes(view, 2, EnumLimits{MaxConfigs: 5})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestEnumerateSizesErrors(t *testing.T) {
	if _, err := EnumerateSizes(nil, 2, EnumLimits{}); err == nil {
		t.Fatal("empty view should error")
	}
	mg, err := multigraph.Random(2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	view, err := mg.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumerateSizes(view, 0, EnumLimits{}); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestEnumerateSizesInconsistentView(t *testing.T) {
	// Round 1 references a state nobody could occupy.
	bad := multigraph.LeaderView{
		{
			{Label: 1, StateKey: multigraph.History{}.Key()}: 1,
		},
		{
			{Label: 1, StateKey: multigraph.History{multigraph.SetOf(2)}.Key()}: 1,
		},
	}
	sizes, err := EnumerateSizes(bad, 2, EnumLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 0 {
		t.Fatalf("inconsistent view gave sizes %v", sizes)
	}
}

// The enumerator witnesses Lemma 5 independently: for the worst-case pair,
// both n and n+1 appear among the enumerated sizes of the shared view.
func TestEnumerateSizesSeesPair(t *testing.T) {
	mg, err := multigraph.FromHistoryCounts(2, 2, []int{0, 0, 1, 0, 0, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	view, err := mg.LeaderView(2)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := EnumerateSizes(view, 2, EnumLimits{})
	if err != nil {
		t.Fatal(err)
	}
	has4, has5 := false, false
	for _, n := range sizes {
		if n == 4 {
			has4 = true
		}
		if n == 5 {
			has5 = true
		}
	}
	if !has4 || !has5 {
		t.Fatalf("sizes %v missing the Figure 4 pair {4,5}", sizes)
	}
}
