package kernel

import (
	"math/rand"
	"testing"

	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

func TestStructuredMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ r, k int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 2}, {0, 3}, {1, 3},
	} {
		dense, err := Matrix(tc.r, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		v := linalg.NewVector(Cols(tc.r, tc.k))
		for i := range v {
			v[i].SetInt64(int64(rng.Intn(9) - 4))
		}
		want, err := dense.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := StructuredMulVec(tc.r, tc.k, v)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("r=%d k=%d: structured product differs from dense", tc.r, tc.k)
		}
	}
}

// Lemma 3 at scale: M_r k_r = 0 verified through r = 10 (177k columns),
// far beyond dense reach.
func TestKernelNullspaceDeep(t *testing.T) {
	for r := 6; r <= 10; r++ {
		prod, err := StructuredMulVec(r, 2, ClosedFormKernel(r))
		if err != nil {
			t.Fatal(err)
		}
		if !prod.IsZero() {
			t.Fatalf("r=%d: M_r k_r != 0", r)
		}
	}
}

// The observation identity at depth: M_r s = m_r via the structured
// product for a 1000-node random schedule at r = 7.
func TestObservationIdentityDeep(t *testing.T) {
	const r = 7
	mg, err := multigraph.Random(2, 1000, r+1, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := TrueSolutionVector(mg, r)
	if err != nil {
		t.Fatal(err)
	}
	view, err := mg.LeaderView(r + 1)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObservationVector(view, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := StructuredMulVec(r, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(obs) {
		t.Fatal("M_r s != m_r at depth 7")
	}
}

func TestStructuredErrors(t *testing.T) {
	if _, err := StructuredMulVec(-1, 2, nil); err == nil {
		t.Fatal("negative round should error")
	}
	if _, err := StructuredMulVec(0, 0, nil); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := StructuredMulVec(0, 2, linalg.NewVector(2)); err == nil {
		t.Fatal("wrong length should error")
	}
}
