package kernel

import (
	"fmt"
	"sort"

	"anondyn/internal/multigraph"
)

// EnumLimits bounds the search of the general-k enumerator. The solution
// space of ℳ(DBL)ₖ views grows quickly with k and the observation counts
// (for k ≥ 3 the kernel of M_r has dimension > 1), so the enumeration is
// explicitly budgeted.
type EnumLimits struct {
	// MaxConfigs caps the number of partial configurations explored.
	// Zero means the default (1e6).
	MaxConfigs int
}

func (l EnumLimits) budget() int {
	if l.MaxConfigs <= 0 {
		return 1_000_000
	}
	return l.MaxConfigs
}

// ErrBudgetExhausted is returned when the enumeration exceeds its budget.
var ErrBudgetExhausted = fmt.Errorf("kernel: enumeration budget exhausted")

// EnumerateSizes computes the exact set of network sizes consistent with a
// leader view over a k-label alphabet, by depth-first search with
// constraint propagation over the state tree. For k = 2 it agrees with
// SolveCountInterval (tested); for k ≥ 3 it is the only exact solver in
// this package, practical for small instances only.
//
// The search enumerates, per observed node-state y, the ways to distribute
// y's population over the 2^k - 1 label sets consistently with the round's
// per-label observations, and recurses level by level; a size is reported
// as soon as one full-depth witness exists.
func EnumerateSizes(view multigraph.LeaderView, k int, limits EnumLimits) ([]int, error) {
	if k < 1 || k > multigraph.MaxK {
		return nil, fmt.Errorf("kernel: alphabet size %d out of range [1,%d]", k, multigraph.MaxK)
	}
	t := len(view)
	if t == 0 {
		return nil, fmt.Errorf("kernel: empty view constrains nothing")
	}
	e := &enumerator{view: view, k: k, budget: limits.budget()}
	// Top level: distribute the unknown total over the round-0 label sets.
	top := parent{y: multigraph.History{}}
	dists, err := e.distributions(0, top, -1)
	if err != nil {
		return nil, err
	}
	sizes := map[int]bool{}
	for _, d := range dists {
		n := 0
		for _, u := range d {
			n += u
		}
		if sizes[n] {
			continue
		}
		ok, err := e.feasible(1, e.children(top, d))
		if err != nil {
			return nil, err
		}
		if ok {
			sizes[n] = true
		}
	}
	out := make([]int, 0, len(sizes))
	for n := range sizes {
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// parent is an aggregated node-state with its population.
type parent struct {
	y multigraph.History
	u int
}

type enumerator struct {
	view   multigraph.LeaderView
	k      int
	budget int
}

func (e *enumerator) obs(round, label int, y multigraph.History) int {
	return e.view[round][multigraph.ObsKey{Label: label, StateKey: y.Key()}]
}

// spend consumes budget, erroring when exhausted.
func (e *enumerator) spend() error {
	e.budget--
	if e.budget < 0 {
		return ErrBudgetExhausted
	}
	return nil
}

// distributions enumerates the assignments of parent p's population to the
// valid label sets at the given round, satisfying the per-label
// observations R_j(p.y). total < 0 means the population is unconstrained
// (the top level, where the total IS the unknown network size).
func (e *enumerator) distributions(round int, p parent, total int) ([][]int, error) {
	symbols := multigraph.AllSymbols(e.k)
	remaining := make([]int, e.k+1) // remaining[j] for labels 1..k
	for j := 1; j <= e.k; j++ {
		remaining[j] = e.obs(round, j, p.y)
	}
	var out [][]int
	cur := make([]int, len(symbols))
	var rec func(idx, used int) error
	rec = func(idx, used int) error {
		if err := e.spend(); err != nil {
			return err
		}
		if idx == len(symbols) {
			for j := 1; j <= e.k; j++ {
				if remaining[j] != 0 {
					return nil
				}
			}
			if total >= 0 && used != total {
				return nil
			}
			out = append(out, append([]int(nil), cur...))
			return nil
		}
		s := symbols[idx]
		labels := s.Labels()
		// Upper bound for this symbol's count.
		maxV := int(^uint(0) >> 1)
		for _, j := range labels {
			if remaining[j] < maxV {
				maxV = remaining[j]
			}
		}
		if total >= 0 && total-used < maxV {
			maxV = total - used
		}
		for v := 0; v <= maxV; v++ {
			cur[idx] = v
			for _, j := range labels {
				remaining[j] -= v
			}
			if err := rec(idx+1, used+v); err != nil {
				return err
			}
			for _, j := range labels {
				remaining[j] += v
			}
		}
		cur[idx] = 0
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// children maps a distribution back to the populated child parents.
func (e *enumerator) children(p parent, dist []int) []parent {
	symbols := multigraph.AllSymbols(e.k)
	var out []parent
	for i, u := range dist {
		if u > 0 {
			out = append(out, parent{y: p.y.Extend(symbols[i]), u: u})
		}
	}
	return out
}

// feasible reports whether the populated parents at the given level can be
// extended consistently through the rest of the view.
func (e *enumerator) feasible(level int, parents []parent) (bool, error) {
	if level >= len(e.view) {
		return true, nil
	}
	// Every observed state at this level must be populated: an
	// observation about a state no node occupies is inconsistent. (All
	// keys in view[level] are states of length `level` by construction.)
	populated := make(map[string]bool, len(parents))
	for _, p := range parents {
		populated[p.y.Key()] = true
	}
	for key, count := range e.view[level] {
		if count > 0 && !populated[key.StateKey] {
			return false, nil
		}
	}
	return e.assign(level, parents, 0, nil)
}

// assign walks the parents at one level, enumerating each one's
// distribution and recursing into the next level once all are assigned.
func (e *enumerator) assign(level int, parents []parent, idx int, acc []parent) (bool, error) {
	if idx == len(parents) {
		return e.feasible(level+1, acc)
	}
	p := parents[idx]
	dists, err := e.distributions(level, p, p.u)
	if err != nil {
		return false, err
	}
	for _, d := range dists {
		ok, err := e.assign(level, parents, idx+1, append(acc, e.children(p, d)...))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
