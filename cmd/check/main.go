// Command check runs the randomized verification harness: seeded campaigns
// of generated adversary schedules, 𝒢(PD)₂ transformations, and Lemma-5
// pairs, each checked against the registry of differential and metamorphic
// oracles in internal/check. A failing property is shrunk to a minimal
// counterexample and reported with a one-line replay command that
// regenerates it deterministically.
//
// Usage:
//
//	check [-seed N] [-iters N] [-oracle name[,name...]] [-failures N]
//	      [-budget N] [-timeout 1m] [-metrics metrics.json]
//	      [-pprof localhost:6060]
//	check -replay SEED -oracle name [-budget N]
//	check -list
//
// Exit codes: 0 all properties held, 1 usage error, 2 at least one oracle
// fired (each failure's replay command is printed). -metrics writes a JSON
// snapshot of the harness counters (instances generated, oracle
// evaluations, failures, shrink steps) plus whatever the instrumented
// solvers recorded underneath; -pprof serves live /debug/pprof and
// /metrics. Without either flag the instrumentation costs nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"anondyn/internal/check"
	"anondyn/internal/cli"
)

func main() {
	cli.Main("check", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "campaign seed; per-iteration seeds derive from it deterministically")
	iters := fs.Int("iters", 500, "iterations per selected oracle")
	oracle := fs.String("oracle", "", "comma-separated oracle subset (default: all); see -list")
	replay := fs.Int64("replay", 0, "re-run one per-iteration seed from a failure report (requires a single -oracle)")
	failures := fs.Int("failures", 1, "stop after this many failures")
	budget := fs.Int("budget", check.DefaultShrinkBudget, "candidate evaluations spent shrinking each failure")
	list := fs.Bool("list", false, "list registered oracles and exit")
	timeout := fs.Duration("timeout", 0, "abort the campaign after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *list {
		for _, o := range check.Oracles() {
			fmt.Fprintf(out, "%-12s %s\n", o.Name, o.Doc)
		}
		return nil
	}
	var names []string
	if *oracle != "" {
		for _, n := range strings.Split(*oracle, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	for _, n := range names {
		if _, err := check.OracleByName(n); err != nil {
			return cli.WrapUsage(err)
		}
	}
	if *iters < 1 {
		return cli.Usagef("need -iters >= 1, got %d", *iters)
	}
	if *failures < 1 {
		return cli.Usagef("need -failures >= 1, got %d", *failures)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	if *replay != 0 {
		if len(names) != 1 {
			return cli.Usagef("-replay needs exactly one -oracle, got %q", *oracle)
		}
		f, err := check.Replay(names[0], *replay, *budget)
		if err != nil {
			return cli.WrapUsage(err)
		}
		if f == nil {
			fmt.Fprintf(out, "PASS %s seed=%d\n", names[0], *replay)
			return nil
		}
		fmt.Fprintf(out, "FAIL %s seed=%d: %v\n  shrunk (%d steps): %s\n",
			f.Oracle, f.Seed, f.Err, f.ShrinkSteps, f.Instance)
		return fmt.Errorf("oracle %s failed on replayed seed %d", f.Oracle, f.Seed)
	}

	rep, err := check.Run(ctx, check.Options{
		Seed:         *seed,
		Iters:        *iters,
		Oracles:      names,
		MaxFailures:  *failures,
		ShrinkBudget: *budget,
		Out:          out,
	})
	if err != nil {
		if cli.IsUsage(err) {
			return err
		}
		return fmt.Errorf("campaign aborted after %d instances: %w", rep.Instances, err)
	}
	fmt.Fprintf(out, "check: seed=%d iters=%d: %d instances, %d oracle evals, %d failures\n",
		*seed, *iters, rep.Instances, rep.Evals, len(rep.Failures))
	if len(rep.Failures) > 0 {
		return fmt.Errorf("%d oracle failure(s); replay commands above", len(rep.Failures))
	}
	return nil
}
