package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/cli"
)

// TestRunHealthyCampaign is the CLI acceptance path: a short seeded
// campaign over all oracles exits clean and reports its accounting line.
func TestRunHealthyCampaign(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iters", "15", "-seed", "1"}, &sb); err != nil {
		t.Fatalf("healthy campaign failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "check: seed=1 iters=15:") || !strings.Contains(out, "0 failures") {
		t.Fatalf("missing accounting line:\n%s", out)
	}
}

// TestRunList covers -list.
func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"interval", "eliminate", "closedform", "pair", "transform", "relabel", "message", "monotone", "enumk"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("-list output missing oracle %q:\n%s", name, sb.String())
		}
	}
}

// TestRunReplayHealthySeed covers the replay path on a passing seed.
func TestRunReplayHealthySeed(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-oracle", "interval", "-replay", "42"}, &sb); err != nil {
		t.Fatalf("replay of healthy seed failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "PASS interval seed=42") {
		t.Fatalf("missing PASS line:\n%s", sb.String())
	}
}

// TestRunUsageErrors pins the exit-1 paths.
func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-iters", "0"},
		{"-failures", "0"},
		{"-oracle", "nope"},
		{"-replay", "7"},                          // no oracle
		{"-replay", "7", "-oracle", "pair,enumk"}, // two oracles
	}
	for _, args := range cases {
		err := run(context.Background(), args, &strings.Builder{})
		if err == nil || !cli.IsUsage(err) {
			t.Errorf("args %v: want usage error, got %v", args, err)
		}
	}
}

// TestRunMetricsSnapshot checks that -metrics writes the harness counters.
func TestRunMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iters", "5", "-metrics", path}, &sb); err != nil {
		t.Fatalf("campaign: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v", err)
	}
	blob := string(raw)
	for _, metric := range []string{"check.instances_generated", "check.oracle_evals"} {
		if !strings.Contains(blob, metric) {
			t.Errorf("snapshot missing %s:\n%s", metric, blob)
		}
	}
}
