// Command sweep runs an experiment campaign on the sharded worker pool:
// it expands a declarative spec (protocol × size grid × trials × seed) into
// independent jobs, executes them with work stealing and per-job
// deterministic seeds, streams every completed job to an append-only JSONL
// journal, and prints the aggregated per-size distributions. A killed
// campaign restarts with -resume and recomputes only the missing jobs; the
// aggregated output is byte-identical to an uninterrupted run.
//
// Usage:
//
//	sweep -spec figures|smoke|path.json [-workers N] [-out sweep.jsonl]
//	      [-resume] [-retries N] [-maxjobs N] [-csv] [-timeout 1m]
//	      [-metrics metrics.json] [-pprof localhost:6060]
//	sweep serve [-addr 127.0.0.1:8080] [-datadir sweepd] [-max-campaigns N]
//	      [-workers N] [-retries N] [-addrfile path] [-timeout 1m]
//	      [-metrics metrics.json] [-pprof localhost:6060]
//
// Results go to stdout; progress and campaign accounting go to stderr, so
// stdout can be diffed across runs. Exit codes: 0 success, 1 usage error,
// 2 runtime failure (including an interrupted campaign — whose journal is
// nevertheless durable and resumable).
//
// "sweep serve" runs the campaign service (internal/sweep/daemon): campaigns
// are submitted over HTTP, queued durably under -datadir, and survive a
// daemon kill — the next serve on the same -datadir resumes every unfinished
// campaign from its journal. -addrfile writes the bound address (useful with
// -addr :0) for scripts and kill/restart drills.
//
// -metrics writes a JSON snapshot of the run's counters and histograms
// (jobs executed, retries, queue depth, per-job and per-solver-round wall
// time, journal append+fsync latency) on exit; -pprof serves live
// /debug/pprof, /debug/vars, and /metrics on the given address. Without
// either flag the instrumentation is disabled and costs nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"

	"anondyn/internal/cli"
	"anondyn/internal/obs"
	"anondyn/internal/sweep"
	"anondyn/internal/sweep/daemon"
)

func main() {
	cli.Main("sweep", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	if len(args) > 0 && args[0] == "serve" {
		return serve(ctx, args[1:])
	}
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	specArg := fs.String("spec", "", "campaign spec: a built-in name (figures, smoke), a built-in set (zoo, zoo-smoke), or a JSON file path")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	out_ := fs.String("out", "sweep.jsonl", "journal path (JSONL, one completed job per line)")
	resume := fs.Bool("resume", false, "resume from the journal instead of truncating it")
	retries := fs.Int("retries", 1, "re-attempts per job after an execution fault")
	maxJobs := fs.Int("maxjobs", 0, "stop after executing this many jobs (0 = no limit); for resume drills")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	timeout := fs.Duration("timeout", 0, "abort the campaign after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *specArg == "" {
		return cli.Usagef("missing -spec (built-in campaigns: figures, smoke; sets: zoo, zoo-smoke)")
	}
	if *workers < 1 {
		return cli.Usagef("need -workers >= 1, got %d", *workers)
	}
	if *retries < 0 {
		return cli.Usagef("need -retries >= 0, got %d", *retries)
	}
	if *maxJobs < 0 {
		return cli.Usagef("need -maxjobs >= 0 (0 = no limit), got %d", *maxJobs)
	}
	specs, ok := sweep.BuiltinSet(*specArg)
	if !ok {
		spec, err := sweep.LoadSpec(*specArg)
		if err != nil {
			return cli.WrapUsage(err)
		}
		specs = []sweep.Spec{spec}
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	// A set's campaigns share one journal: job keys embed the protocol, so
	// the rows never collide, and campaigns after the first always open in
	// resume mode to append rather than truncate.
	var all []sweep.Result
	for i, spec := range specs {
		rep, err := sweep.RunCampaign(ctx, spec, sweep.CampaignOptions{
			Workers:     *workers,
			MaxRetries:  *retries,
			MaxJobs:     *maxJobs,
			JournalPath: *out_,
			Resume:      *resume || i > 0,
		})
		if rep != nil {
			fmt.Fprintf(os.Stderr, "sweep: campaign %s: %d jobs executed, %d resumed from %s\n",
				spec.Name, rep.Executed, rep.Resumed, *out_)
		}
		if err != nil {
			if rep != nil {
				fmt.Fprintf(os.Stderr, "sweep: interrupted; completed jobs are journaled — rerun with -resume to finish\n")
			}
			return err
		}
		all = append(all, rep.Results...)
	}
	stats := sweep.Aggregate(all)
	if *csv {
		_, err = io.WriteString(out, sweep.FormatCSV(stats))
	} else {
		_, err = io.WriteString(out, sweep.FormatTable(stats))
	}
	return err
}

// serve runs the long-lived campaign service. It owns no stdout: the API is
// the interface, stderr carries the lifecycle log, and -addrfile publishes
// the bound address for scripts that started it with -addr :0.
func serve(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("sweep serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen `address` (port 0 picks a free port)")
	datadir := fs.String("datadir", "sweepd", "data `directory` holding the durable campaign queue and journals")
	maxCampaigns := fs.Int("max-campaigns", 2, "campaigns running concurrently; further submissions queue")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "default per-campaign worker-pool size")
	retries := fs.Int("retries", 1, "default re-attempts per job after an execution fault")
	addrFile := fs.String("addrfile", "", "write the bound address to this `file` once listening")
	timeout := fs.Duration("timeout", 0, "shut down after this duration (0 = run until interrupted)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("serve takes no positional arguments, got %q", fs.Args())
	}
	if *maxCampaigns < 1 {
		return cli.Usagef("need -max-campaigns >= 1, got %d", *maxCampaigns)
	}
	if *workers < 1 {
		return cli.Usagef("need -workers >= 1, got %d", *workers)
	}
	if *retries < 0 {
		return cli.Usagef("need -retries >= 0, got %d", *retries)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	srv, err := daemon.New(daemon.Config{
		Dir:          *datadir,
		MaxCampaigns: *maxCampaigns,
		Workers:      *workers,
		Retries:      *retries,
		Obs:          obs.Global(), // nil without -metrics/-pprof; daemon then self-collects
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = srv.Close()
		return cli.Usagef("-addr: %v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if werr := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); werr != nil {
			_ = ln.Close()
			_ = srv.Close()
			return fmt.Errorf("sweep: write -addrfile: %w", werr)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: serving campaigns on http://%s (datadir %s, %d slots)\n",
		bound, *datadir, *maxCampaigns)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Interrupt or -timeout: the graceful spelling of a kill. Stop
		// accepting, unwind the runners, and leave unfinished campaigns
		// durably "running" — the next serve on this datadir resumes them.
		_ = hs.Close()
		_ = srv.Close()
		<-serveErr
		fmt.Fprintln(os.Stderr, "sweep: shut down; unfinished campaigns resume on the next serve")
		return nil
	case herr := <-serveErr:
		_ = srv.Close()
		return fmt.Errorf("sweep: serve: %w", herr)
	}
}
