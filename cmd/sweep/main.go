// Command sweep runs an experiment campaign on the sharded worker pool:
// it expands a declarative spec (protocol × size grid × trials × seed) into
// independent jobs, executes them with work stealing and per-job
// deterministic seeds, streams every completed job to an append-only JSONL
// journal, and prints the aggregated per-size distributions. A killed
// campaign restarts with -resume and recomputes only the missing jobs; the
// aggregated output is byte-identical to an uninterrupted run.
//
// Usage:
//
//	sweep -spec figures|smoke|path.json [-workers N] [-out sweep.jsonl]
//	      [-resume] [-retries N] [-maxjobs N] [-csv] [-timeout 1m]
//	      [-metrics metrics.json] [-pprof localhost:6060]
//
// Results go to stdout; progress and campaign accounting go to stderr, so
// stdout can be diffed across runs. Exit codes: 0 success, 1 usage error,
// 2 runtime failure (including an interrupted campaign — whose journal is
// nevertheless durable and resumable).
//
// -metrics writes a JSON snapshot of the run's counters and histograms
// (jobs executed, retries, queue depth, per-job and per-solver-round wall
// time, journal append+fsync latency) on exit; -pprof serves live
// /debug/pprof, /debug/vars, and /metrics on the given address. Without
// either flag the instrumentation is disabled and costs nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"anondyn/internal/cli"
	"anondyn/internal/sweep"
)

func main() {
	cli.Main("sweep", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	specArg := fs.String("spec", "", "campaign spec: a built-in name (figures, smoke), a built-in set (zoo, zoo-smoke), or a JSON file path")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	out_ := fs.String("out", "sweep.jsonl", "journal path (JSONL, one completed job per line)")
	resume := fs.Bool("resume", false, "resume from the journal instead of truncating it")
	retries := fs.Int("retries", 1, "re-attempts per job after an execution fault")
	maxJobs := fs.Int("maxjobs", 0, "stop after executing this many jobs (0 = no limit); for resume drills")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	timeout := fs.Duration("timeout", 0, "abort the campaign after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *specArg == "" {
		return cli.Usagef("missing -spec (built-in campaigns: figures, smoke; sets: zoo, zoo-smoke)")
	}
	if *workers < 1 {
		return cli.Usagef("need -workers >= 1, got %d", *workers)
	}
	if *retries < 0 {
		return cli.Usagef("need -retries >= 0, got %d", *retries)
	}
	if *maxJobs < 0 {
		return cli.Usagef("need -maxjobs >= 0 (0 = no limit), got %d", *maxJobs)
	}
	specs, ok := sweep.BuiltinSet(*specArg)
	if !ok {
		spec, err := sweep.LoadSpec(*specArg)
		if err != nil {
			return cli.WrapUsage(err)
		}
		specs = []sweep.Spec{spec}
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	// A set's campaigns share one journal: job keys embed the protocol, so
	// the rows never collide, and campaigns after the first always open in
	// resume mode to append rather than truncate.
	var all []sweep.Result
	for i, spec := range specs {
		rep, err := sweep.RunCampaign(ctx, spec, sweep.CampaignOptions{
			Workers:     *workers,
			MaxRetries:  *retries,
			MaxJobs:     *maxJobs,
			JournalPath: *out_,
			Resume:      *resume || i > 0,
		})
		if rep != nil {
			fmt.Fprintf(os.Stderr, "sweep: campaign %s: %d jobs executed, %d resumed from %s\n",
				spec.Name, rep.Executed, rep.Resumed, *out_)
		}
		if err != nil {
			if rep != nil {
				fmt.Fprintf(os.Stderr, "sweep: interrupted; completed jobs are journaled — rerun with -resume to finish\n")
			}
			return err
		}
		all = append(all, rep.Results...)
	}
	stats := sweep.Aggregate(all)
	if *csv {
		_, err = io.WriteString(out, sweep.FormatCSV(stats))
	} else {
		_, err = io.WriteString(out, sweep.FormatTable(stats))
	}
	return err
}
