package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"anondyn/internal/cli"
	"anondyn/internal/obs"
	"anondyn/internal/sweep"
	"anondyn/internal/sweep/daemon"
)

func TestRunSmokeCampaign(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", "smoke", "-workers", "2", "-out", journal}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "mdbl-count") || !strings.Contains(out, "proto") {
		t.Fatalf("missing table:\n%s", out)
	}
	done, err := sweep.ReadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 8 { // smoke = 2 sizes × 4 trials
		t.Fatalf("journal holds %d rows, want 8", len(done))
	}
}

// A built-in set runs every member campaign into one shared journal and
// prints one combined table.
func TestRunZooSmokeSet(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "zoo.jsonl")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", "zoo-smoke", "-workers", "2", "-out", journal}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, proto := range []string{
		"zoo-histtree", "zoo-idcount", "zoo-incremental", "zoo-leaderstate", "zoo-upperbound",
		"zoo-degreeoracle", "zoo-tinterval", "zoo-joinleave", "zoo-randomized",
	} {
		if !strings.Contains(out, proto) {
			t.Fatalf("combined table missing %s:\n%s", proto, out)
		}
	}
	done, err := sweep.ReadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 18 { // 9 campaigns × 2 sizes × 1 trial
		t.Fatalf("shared journal holds %d rows, want 18", len(done))
	}
}

// The CLI resume drill: interrupt with -maxjobs (exit code 2), resume, and
// require stdout byte-identical to an uninterrupted campaign.
func TestRunForcedResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()

	var full strings.Builder
	if err := run(context.Background(), []string{"-spec", "smoke", "-workers", "2", "-out", filepath.Join(dir, "full.jsonl")}, &full); err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(dir, "j.jsonl")
	var interrupted strings.Builder
	err := run(context.Background(), []string{"-spec", "smoke", "-workers", "2", "-maxjobs", "3", "-out", journal}, &interrupted)
	if !errors.Is(err, sweep.ErrJobLimit) {
		t.Fatalf("want ErrJobLimit, got %v", err)
	}
	if cli.ExitCode(err) != cli.ExitRuntime {
		t.Fatalf("interrupted campaign must exit %d, got %d", cli.ExitRuntime, cli.ExitCode(err))
	}
	if interrupted.Len() != 0 {
		t.Fatalf("interrupted run wrote to stdout:\n%s", interrupted.String())
	}

	var resumed strings.Builder
	if err := run(context.Background(), []string{"-spec", "smoke", "-workers", "2", "-resume", "-out", journal}, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Fatalf("resumed output differs:\n%s\nvs\n%s", resumed.String(), full.String())
	}
}

func TestRunSpecFileAndCSV(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	specJSON := `{"name":"tiny","proto":"mdbl-count","sizes":[5],"trials":2,"horizon":6,"seed":3}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", specPath, "-csv", "-out", filepath.Join(dir, "j.jsonl")}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "proto,n,trials,") {
		t.Fatalf("missing CSV header:\n%s", sb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // missing -spec
		{"-spec", "no-such-spec"},            // unknown spec
		{"-spec", "smoke", "-workers", "0"},  // bad workers
		{"-spec", "smoke", "-workers", "-3"}, // negative workers
		{"-spec", "smoke", "-retries", "-1"}, // negative retries
		{"-spec", "smoke", "-maxjobs", "-1"}, // negative maxjobs
		{"-nope"},                            // bad flag
	} {
		err := run(context.Background(), args, &strings.Builder{})
		if cli.ExitCode(err) != cli.ExitUsage {
			t.Fatalf("args %v: want usage error, got %v", args, err)
		}
	}
}

// The -metrics acceptance check: a smoke campaign's snapshot must carry a
// nonzero jobs/sec rate, journal append+fsync latency, and the per-round
// solver wall-time histogram.
func TestRunMetricsSnapshot(t *testing.T) {
	// -metrics installs a process-wide collector; detach it so later tests
	// in this package run unobserved again.
	defer obs.Set(nil)
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	args := []string{"-spec", "smoke", "-workers", "2",
		"-out", filepath.Join(dir, "j.jsonl"), "-metrics", metricsPath}
	if err := run(context.Background(), args, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
	if got := snap.Counters[obs.SweepJobs]; got != 8 { // smoke = 2 sizes × 4 trials
		t.Errorf("%s = %d, want 8", obs.SweepJobs, got)
	}
	if rate := snap.Rates[obs.SweepJobs]; rate <= 0 {
		t.Errorf("jobs/sec rate = %v, want > 0", rate)
	}
	if h := snap.Histograms[obs.SweepJournalAppendNS]; h.Count == 0 || h.Sum <= 0 {
		t.Errorf("journal append+fsync histogram empty: %+v", h)
	}
	if h := snap.Histograms[obs.KernelRoundNS]; h.Count == 0 {
		t.Errorf("per-round solver histogram empty: %+v", h)
	}
	if h := snap.Histograms[obs.SweepJobNS]; h.Count != 8 {
		t.Errorf("per-job histogram count = %d, want 8", h.Count)
	}
}

// startServe launches "sweep serve" with -addr :0 under a cancellable
// context, waits for -addrfile to publish the bound address, and returns the
// base URL plus a stop function that shuts the daemon down gracefully and
// requires exit 0.
func startServe(t *testing.T, datadir string) (string, func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0",
			"-datadir", datadir, "-addrfile", addrFile, "-workers", "2"}, &strings.Builder{})
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for {
		if data, err := os.ReadFile(addrFile); err == nil && bytes.HasSuffix(data, []byte("\n")) {
			addr = strings.TrimSpace(string(data))
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("serve exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never wrote -addrfile")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("serve shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("serve did not shut down")
		}
	}
}

// The serve lifecycle: submit a campaign over HTTP, watch it to completion,
// stop the daemon (exit 0), and restart on the same datadir — the finished
// campaign is still listed, done, and servable.
func TestServeLifecycle(t *testing.T) {
	datadir := filepath.Join(t.TempDir(), "sweepd")
	base, stop := startServe(t, datadir)

	resp, err := http.Post(base+"/campaigns", "application/json",
		strings.NewReader(`{"set":"smoke","workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var m daemon.Meta
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	if m.TotalJobs != 8 { // smoke = 2 sizes × 4 trials
		t.Fatalf("total_jobs = %d, want 8", m.TotalJobs)
	}

	waitDone := func(base string) daemon.Status {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(base + "/campaigns/" + m.ID)
			if err != nil {
				t.Fatal(err)
			}
			var st daemon.Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if st.State.Terminal() {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign stuck in %q", st.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if st := waitDone(base); st.State != daemon.StateDone {
		t.Fatalf("campaign ended %q (error %q), want done", st.State, st.Error)
	}

	// The aggregate endpoint recomputes from the journal and audits it.
	resp, err = http.Get(base + "/campaigns/" + m.ID + "/results?format=table")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(table), "mdbl-count") {
		t.Fatalf("results: status %d:\n%s", resp.StatusCode, table)
	}
	stop()

	// Restart on the same datadir: the durable queue still holds the
	// campaign, terminal, without re-running anything.
	base2, stop2 := startServe(t, datadir)
	defer stop2()
	if st := waitDone(base2); st.State != daemon.StateDone || st.DoneJobs != 8 {
		t.Fatalf("after restart: state %q done_jobs %d, want done/8", st.State, st.DoneJobs)
	}
}

func TestServeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"serve", "-max-campaigns", "0"},
		{"serve", "-workers", "0"},
		{"serve", "-retries", "-1"},
		{"serve", "-nope"},
		{"serve", "stray-positional"},
	} {
		err := run(context.Background(), args, &strings.Builder{})
		if cli.ExitCode(err) != cli.ExitUsage {
			t.Fatalf("args %v: want usage error, got %v", args, err)
		}
	}
	// A bad -addr is only reached after the daemon opens its datadir; keep
	// that side effect in a temp directory.
	args := []string{"serve", "-datadir", filepath.Join(t.TempDir(), "d"),
		"-addr", "not-an-address:-1"}
	if err := run(context.Background(), args, &strings.Builder{}); cli.ExitCode(err) != cli.ExitUsage {
		t.Fatalf("args %v: want usage error, got %v", args, err)
	}
}

// -timeout doubles as a scheduled shutdown: the daemon exits 0 on its own.
func TestServeTimeoutExitsCleanly(t *testing.T) {
	err := run(context.Background(), []string{"serve", "-addr", "127.0.0.1:0",
		"-datadir", filepath.Join(t.TempDir(), "d"), "-timeout", "150ms"}, &strings.Builder{})
	if err != nil {
		t.Fatalf("timed-out serve must exit 0, got %v", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-spec", "smoke", "-out", filepath.Join(t.TempDir(), "j.jsonl")}, &strings.Builder{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cli.ExitCode(err) != cli.ExitRuntime {
		t.Fatalf("canceled campaign must exit %d", cli.ExitRuntime)
	}
}
