// Command study runs the Monte-Carlo average-vs-worst-case comparison: for
// each network size it measures the leader-state counter's termination
// round over many random ℳ(DBL)₂ schedules and prints the distribution
// next to the adversarial worst case (which always equals the Theorem 1
// bound).
//
// Usage:
//
//	study [-sizes 13,40,121,364] [-trials 100] [-horizon 10] [-seed 1] [-csv] [-timeout 1m]
//
// The study honors SIGINT/SIGTERM and -timeout, stopping between trials.
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON metrics snapshot on exit (solver calls, per-round solve time),
// -pprof <addr> serves live /debug/pprof, /debug/vars, and /metrics.
// Without either flag the instrumentation is disabled and costs nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"anondyn/internal/cli"
	"anondyn/internal/montecarlo"
)

func main() {
	cli.Main("study", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("study", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "13,40,121,364", "comma-separated network sizes")
	trials := fs.Int("trials", 100, "random schedules per size")
	horizon := fs.Int("horizon", 10, "rounds per trial")
	seed := fs.Int64("seed", 1, "base seed")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	timeout := fs.Duration("timeout", 0, "abort the study after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	var sizes []int
	for _, part := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return cli.Usagef("bad size %q: %v", part, err)
		}
		sizes = append(sizes, n)
	}
	comps, err := montecarlo.Compare(ctx, sizes, *trials, *horizon, *seed)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprintln(out, "n,mean,p50,p90,p99,max,worst_case,bound")
		for _, c := range comps {
			fmt.Fprintf(out, "%d,%.3f,%d,%d,%d,%d,%d,%d\n",
				c.N, c.Average.Mean, c.Average.P50, c.Average.P90, c.Average.P99,
				c.Average.Max, c.WorstCase, c.LowerBound)
		}
		return nil
	}
	fmt.Fprintf(out, "%8s  %8s  %5s  %5s  %5s  %5s  %11s\n",
		"n", "mean", "p50", "p90", "p99", "max", "worst case")
	for _, c := range comps {
		fmt.Fprintf(out, "%8d  %8.2f  %5d  %5d  %5d  %5d  %11d\n",
			c.N, c.Average.Mean, c.Average.P50, c.Average.P90, c.Average.P99,
			c.Average.Max, c.WorstCase)
	}
	fmt.Fprintln(out, "\nrandom schedules resolve in a flat, small number of rounds; only the")
	fmt.Fprintln(out, "kernel-tuned adversary forces the logarithmic worst case.")
	return nil
}
