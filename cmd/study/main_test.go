package main

import (
	"context"
	"strings"
	"testing"
)

func TestStudyTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-sizes", "13,40", "-trials", "10", "-horizon", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "worst case") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "      13  ") || !strings.Contains(out, "      40  ") {
		t.Fatalf("missing size rows:\n%s", out)
	}
}

func TestStudyCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-sizes", "13", "-trials", "5", "-horizon", "8", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "n,mean,p50,p90,p99,max,worst_case,bound\n") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, ",4,4\n") { // worst case and bound for n=13
		t.Fatalf("missing n=13 row:\n%s", out)
	}
}

func TestStudyErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-sizes", "abc"},
		{"-sizes", "13", "-trials", "0"},
		{"-badflag"},
	} {
		if err := run(context.Background(), args, &sb); err == nil {
			t.Fatalf("args %v should error", args)
		}
	}
}
