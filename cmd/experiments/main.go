// Command experiments regenerates every paper-vs-measured row of the
// reproduction (the figures, lemmas, theorems, corollary, discussion, and
// ablations indexed in DESIGN.md) and prints them as a markdown table.
// It exits non-zero if any measurement disagrees with the paper.
//
// Usage:
//
//	experiments [-id F1,T2,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"anondyn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	idFilter := fs.String("id", "", "comma-separated experiment IDs to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wanted := map[string]bool{}
	if *idFilter != "" {
		for _, id := range strings.Split(*idFilter, ",") {
			wanted[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	var rows []experiments.Row
	for _, r := range experiments.All() {
		if len(wanted) > 0 && !wanted[r.ID] {
			continue
		}
		got, err := r.Fn()
		if err != nil {
			return fmt.Errorf("run %s: %w", r.ID, err)
		}
		rows = append(rows, got...)
	}
	if len(rows) == 0 {
		return fmt.Errorf("no experiments matched filter %q", *idFilter)
	}
	fmt.Fprint(out, experiments.FormatTable(rows))
	if !experiments.AllMatch(rows) {
		return fmt.Errorf("some measurements disagree with the paper")
	}
	fmt.Fprintf(out, "\n%d rows, all matching the paper's claims.\n", len(rows))
	return nil
}
