// Command experiments regenerates every paper-vs-measured row of the
// reproduction (the figures, lemmas, theorems, corollary, discussion, and
// ablations indexed in DESIGN.md) and prints them as a markdown table.
// It exits non-zero if any measurement disagrees with the paper.
//
// Usage:
//
//	experiments [-id F1,T2,...] [-timeout 30s]
//
// The suite honors SIGINT/SIGTERM and -timeout: an interrupted run prints
// the rows completed so far and reports the interruption as a runtime
// failure. Exit codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON metrics snapshot on exit, -pprof <addr> serves live /debug/pprof,
// /debug/vars, and /metrics. Without either flag the instrumentation is
// disabled and costs nothing.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"

	"anondyn/internal/cli"
	"anondyn/internal/experiments"
)

func main() {
	cli.Main("experiments", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	idFilter := fs.String("id", "", "comma-separated experiment IDs to run (default: all)")
	timeout := fs.Duration("timeout", 0, "abort the suite after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	wanted := map[string]bool{}
	if *idFilter != "" {
		for _, id := range strings.Split(*idFilter, ",") {
			wanted[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	var rows []experiments.Row
	var interrupted error
	matched := 0
	for _, r := range experiments.All() {
		if len(wanted) > 0 && !wanted[r.ID] {
			continue
		}
		matched++
		if err := ctx.Err(); err != nil {
			interrupted = err
			break
		}
		got, err := r.Fn(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// The interrupted experiment's partial work is dropped;
				// completed experiments are still reported below.
				interrupted = err
				break
			}
			return fmt.Errorf("run %s: %w", r.ID, err)
		}
		rows = append(rows, got...)
	}
	if matched == 0 {
		return cli.Usagef("no experiments matched filter %q", *idFilter)
	}
	bw := bufio.NewWriter(out)
	if len(rows) > 0 {
		fmt.Fprint(bw, experiments.FormatTable(rows))
	}
	if interrupted != nil {
		var cause string
		switch {
		case errors.Is(interrupted, context.DeadlineExceeded):
			cause = fmt.Sprintf("timeout %v elapsed", *timeout)
		default:
			cause = "interrupted"
		}
		fmt.Fprintf(bw, "\npartial result: %d rows completed before the suite stopped (%s).\n", len(rows), cause)
		// Flush before the non-zero exit (cli.ExitRuntime): the partial
		// rows are what a resumed campaign trusts, so losing them to an
		// unflushed buffer would be worse than the interruption itself.
		// A flush failure escalates into the returned error.
		if ferr := bw.Flush(); ferr != nil {
			return errors.Join(fmt.Errorf("flushing partial results: %w", ferr), interrupted)
		}
		return fmt.Errorf("suite stopped early after %d rows: %w", len(rows), interrupted)
	}
	if !experiments.AllMatch(rows) {
		if ferr := bw.Flush(); ferr != nil {
			return fmt.Errorf("flushing results: %w", ferr)
		}
		return fmt.Errorf("some measurements disagree with the paper")
	}
	fmt.Fprintf(bw, "\n%d rows, all matching the paper's claims.\n", len(rows))
	return bw.Flush()
}
