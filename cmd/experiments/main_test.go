package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunFiltered(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-id", "F3,f4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Fatalf("filtered output missing figures:\n%s", out)
	}
	if strings.Contains(out, "Theorem 1") {
		t.Fatalf("filter leaked other experiments:\n%s", out)
	}
	if !strings.Contains(out, "all matching") {
		t.Fatalf("missing success footer:\n%s", out)
	}
}

func TestRunUnknownFilter(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-id", "ZZ"}, &sb); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag should error")
	}
}
