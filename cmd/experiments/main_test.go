package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"anondyn/internal/cli"
)

func TestRunFiltered(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-id", "F3,f4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Fatalf("filtered output missing figures:\n%s", out)
	}
	if strings.Contains(out, "Theorem 1") {
		t.Fatalf("filter leaked other experiments:\n%s", out)
	}
	if !strings.Contains(out, "all matching") {
		t.Fatalf("missing success footer:\n%s", out)
	}
}

func TestRunUnknownFilter(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-id", "ZZ"}, &sb); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag should error")
	}
}

// An interrupted suite must land its partial output in the writer before
// run returns (the buffer is flushed on the error path, and cli maps the
// error to exit code 2), so resumed campaigns can trust what was printed.
func TestRunInterruptFlushesPartialOutput(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-id", "F3,F4"}, &sb)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cli.ExitCode(err) != cli.ExitRuntime {
		t.Fatalf("interrupted suite must exit %d, got %d", cli.ExitRuntime, cli.ExitCode(err))
	}
	if !strings.Contains(sb.String(), "partial result:") {
		t.Fatalf("partial-result notice not flushed:\n%q", sb.String())
	}
}

// failWriter rejects every write, standing in for a stdout whose device is
// gone: the flush failure must surface in the returned error, not vanish.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("device gone") }

func TestRunInterruptReportsFlushFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-id", "F3"}, failWriter{})
	if err == nil || !strings.Contains(err.Error(), "flushing partial results") {
		t.Fatalf("flush failure not reported: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interruption cause lost from %v", err)
	}
}
