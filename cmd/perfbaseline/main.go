// Command perfbaseline measures the pinned performance workloads of this
// repo — the sequential engine round loop (with the observability layer
// disabled and enabled), the sharded engine at 64 and 10⁶ nodes, the
// incremental kernel solve on a worst-case schedule, the coalesced solver's
// indexed ingestion path (including the million-node stream feed), the
// linalg RREF fast path on both sides of the int64→big.Int fallback
// boundary, the history-tree counter's view-merge hot path (the raw
// bitset MergeCollect plus full Count runs on a 64-node cycle and a
// 1024-node cycle — the latter proves the counter scales past toy sizes),
// a full smoke sweep campaign, and the raw obs handle operations
// — and writes the results as JSON (BENCH_PR10.json). The committed
// snapshot is the reference
// point for spotting regressions in the hot paths; the disabled/enabled
// benchmark pairs quantify the instrumentation overhead itself.
//
// Usage:
//
//	perfbaseline [-o BENCH_PR10.json] [-filter substring] [-benchtime 1s]
//	             [-compare old.json] [-threshold 3.0]
//
// With -compare, per-benchmark deltas against the old baseline are printed
// after the run, and the command exits non-zero if any benchmark present in
// both files slowed down by more than the -threshold factor (<= 0 disables
// the gate). Benchmarks are emitted in sorted name order and the header
// carries go/goos/goarch/cpu/GOMAXPROCS, so cross-run compares are stable.
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure (including a
// tripped regression threshold). perfbaseline manages the process-wide obs
// collector itself (the observed-variant benchmarks install one), so it
// does not take the shared -metrics/-pprof flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"anondyn/internal/cli"
	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/histtree"
	"anondyn/internal/kernel"
	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
	"anondyn/internal/obs"
	engine "anondyn/internal/runtime"
	"anondyn/internal/sweep"
)

func main() {
	cli.Main("perfbaseline", run)
}

// benchResult is one benchmark's numbers, flattened for stable JSON.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// baseline is the BENCH_PR<N>.json payload. It carries the toolchain and
// platform (numbers are meaningless without them) but deliberately no
// timestamp, so regenerating on the same machine produces minimal diffs.
type baseline struct {
	Go         string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPU        string        `json:"cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("perfbaseline", flag.ContinueOnError)
	outPath := fs.String("o", "BENCH_PR10.json", "output `file` (\"-\" for stdout only)")
	filter := fs.String("filter", "", "run only benchmarks whose name contains this substring")
	benchtime := fs.String("benchtime", "", "per-benchmark measuring time (e.g. 100ms); empty keeps the 1s default")
	comparePath := fs.String("compare", "", "old baseline `file` to diff against; exits non-zero past -threshold")
	threshold := fs.Float64("threshold", 3.0, "ns/op regression factor that fails -compare (<= 0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *benchtime != "" {
		// testing.Benchmark honors the test.benchtime flag; register the
		// testing flags and set it so CI can run a short smoke suite.
		testing.Init()
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return cli.Usagef("bad -benchtime %q: %v", *benchtime, err)
		}
	}

	dir, err := os.MkdirTemp("", "perfbaseline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	workloads := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"runtime/round-loop/disabled", roundLoopBench(false)},
		{"runtime/round-loop/observed", roundLoopBench(true)},
		{"runtime/sharded-loop/n64", shardedLoopBench},
		{"runtime/sharded-mdbl2/n1e6", shardedMillionBench},
		{"kernel/stream-feed/n1e6", streamFeedBench()},
		{"kernel/incremental-solve/n364", kernelBench},
		{"histtree/view-merge/64wx8", histMergeBench()},
		{"histtree/count/cycle-n64", histCountBench},
		{"histtree/count/cycle-n1024", histCountLargeBench},
		{"kernel/coalesced-solver/w40", solverBench()},
		{"linalg/rref/int64-16x17", rrefBench(16, 17, 9, false)},
		{"linalg/rref/spill-16x17", rrefBench(16, 17, 1<<32, false)},
		{"linalg/rref/reference-16x17", rrefBench(16, 17, 9, true)},
		{"sweep/smoke-campaign", sweepBench(dir)},
		{"obs/counter+histogram/disabled", obsHandleBench(false)},
		{"obs/counter+histogram/enabled", obsHandleBench(true)},
	}
	// Deterministic sorted emission order, independent of workload
	// registration order: compares line up run to run.
	sort.Slice(workloads, func(i, j int) bool { return workloads[i].name < workloads[j].name })

	bl := baseline{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpuModel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range workloads {
		if *filter != "" && !strings.Contains(w.name, *filter) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped before %s: %w", w.name, err)
		}
		r := testing.Benchmark(w.fn)
		res := benchResult{
			Name:        w.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		bl.Benchmarks = append(bl.Benchmarks, res)
		// Progress is a diagnostic: keep stdout clean so "-o -" pipes.
		fmt.Fprintf(os.Stderr, "%-34s  %12d iter  %14.1f ns/op  %8d B/op  %6d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	if len(bl.Benchmarks) == 0 {
		return cli.Usagef("no benchmarks match -filter %q", *filter)
	}

	data, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
	if *comparePath != "" {
		return compareBaselines(*comparePath, bl, *threshold, *filter, out)
	}
	return nil
}

// compareBaselines prints per-benchmark deltas of the fresh results against
// the committed baseline in oldPath and errors if any shared benchmark's
// ns/op regressed by more than the threshold factor, or if a baseline
// benchmark is missing from the fresh run entirely. A silently dropped
// benchmark would otherwise read as a pass — the gate must notice removals,
// not just slowdowns. Old entries excluded by -filter are reported as
// skipped, not failed: a filtered smoke run only vouches for what it ran.
func compareBaselines(oldPath string, fresh baseline, threshold float64, filter string, out io.Writer) error {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var old baseline
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("compare %s: %w", oldPath, err)
	}
	oldBy := make(map[string]benchResult, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(out, "comparison vs %s (%s, %s/%s):\n", oldPath, old.Go, old.GOOS, old.GOARCH)
	var failures []string
	for _, n := range fresh.Benchmarks {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(out, "  %-34s  new benchmark (no old entry)\n", n.Name)
			continue
		}
		delete(oldBy, n.Name)
		nsRatio := ratio(n.NsPerOp, o.NsPerOp)
		allocRatio := ratio(float64(n.AllocsPerOp), float64(o.AllocsPerOp))
		fmt.Fprintf(out, "  %-34s  ns/op %14.1f -> %14.1f (%5.2fx)  allocs/op %6d -> %6d (%5.2fx)\n",
			n.Name, o.NsPerOp, n.NsPerOp, nsRatio, o.AllocsPerOp, n.AllocsPerOp, allocRatio)
		if threshold > 0 && nsRatio > threshold {
			failures = append(failures,
				fmt.Sprintf("%s slowed %.2fx (%.1f -> %.1f ns/op), threshold %.2fx",
					n.Name, nsRatio, o.NsPerOp, n.NsPerOp, threshold))
		}
	}
	leftover := make([]string, 0, len(oldBy))
	for name := range oldBy {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		if filter != "" && !strings.Contains(name, filter) {
			fmt.Fprintf(out, "  %-34s  skipped (excluded by -filter %q)\n", name, filter)
			continue
		}
		fmt.Fprintf(out, "  %-34s  MISSING (in %s but not in this run)\n", name, oldPath)
		failures = append(failures,
			fmt.Sprintf("%s present in %s but missing from this run", name, oldPath))
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf regression gate tripped:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// ratio returns new/old, treating a zero old value as parity (a 0→0 alloc
// comparison must not divide by zero).
func ratio(new, old float64) float64 {
	if old == 0 {
		if new == 0 {
			return 1
		}
		return new
	}
	return new / old
}

// cpuModel best-effort reads the CPU model name; benchmarks numbers are not
// comparable across CPUs, so the header pins it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return "unknown"
}

// floodProc is the minimal engine workload: node 0 floods a token through
// a static cycle, exercising send, canonical delivery, and receive each
// round with cheap protocol logic so the engine's own cost dominates.
type floodProc struct{ seen bool }

func (p *floodProc) Send(int) engine.Message {
	if p.seen {
		return 1
	}
	return 0
}

func (p *floodProc) Receive(_ int, msgs []engine.Message) {
	for _, m := range msgs {
		if m == 1 {
			p.seen = true
		}
	}
}

func floodCanon(m engine.Message) string {
	if m == 1 {
		return "1"
	}
	return "0"
}

const (
	benchNodes  = 64
	benchRounds = 32
)

func roundLoopBench(observed bool) func(b *testing.B) {
	return func(b *testing.B) {
		prev := obs.Global()
		defer obs.Set(prev)
		if observed {
			obs.Enable()
		} else {
			obs.Set(nil)
		}
		g, err := graph.Cycle(benchNodes)
		if err != nil {
			b.Fatal(err)
		}
		net := dynet.NewStatic(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			procs := make([]engine.Process, benchNodes)
			for j := range procs {
				procs[j] = &floodProc{seen: j == 0}
			}
			cfg := &engine.Config{Net: net, Procs: procs, MaxRounds: benchRounds, Canon: floodCanon}
			if _, err := engine.RunSequential(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// shardedLoopBench is the sharded twin of roundLoopBench: the same 64-node
// flood on a static cycle, run through RunSharded at the default worker
// count. Side by side with runtime/round-loop/disabled it prices the
// sharded engine's per-round coordination on a workload too small to
// amortize it.
func shardedLoopBench(b *testing.B) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)
	g, err := graph.Cycle(benchNodes)
	if err != nil {
		b.Fatal(err)
	}
	net := dynet.NewStatic(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs := make([]engine.Process, benchNodes)
		for j := range procs {
			procs[j] = &floodProc{seen: j == 0}
		}
		cfg := &engine.Config{Net: net, Procs: procs, MaxRounds: benchRounds, Canon: floodCanon}
		if _, err := engine.RunSharded(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// shardedMillionBench is the tentpole workload: a million-W ℳ(DBL)₂
// instance transformed by ToPD2CSR into a million-node 𝒢(PD)₂ network and
// flooded for four rounds on the sharded engine. Setup (the schedule, the
// transform, the process backing array) happens once outside the timer;
// each op resets process state in place and reruns the round loop, so
// allocs/op divided by the round count is the engine's per-round garbage at
// 10⁶ nodes.
func shardedMillionBench(b *testing.B) {
	const (
		millionW      = 1_000_000
		millionRounds = 4
	)
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)
	mg, err := multigraph.Random(2, millionW, millionRounds, 17)
	if err != nil {
		b.Fatal(err)
	}
	net, _, err := mg.ToPD2CSR()
	if err != nil {
		b.Fatal(err)
	}
	n := net.N()
	// One backing array, not 10⁶ individual process allocations.
	backing := make([]floodProc, n)
	procs := make([]engine.Process, n)
	for j := range procs {
		procs[j] = &backing[j]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range backing {
			backing[j].seen = j == 0
		}
		cfg := &engine.Config{Net: net, Procs: procs, MaxRounds: millionRounds, Canon: floodCanon}
		if _, err := engine.RunSharded(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// streamFeedBench isolates the observation-streaming feed path at scale: a
// million-node schedule's per-round indexed observations, precomputed once,
// replayed into a fresh incremental solver each op. The entry lists are
// history-indexed (their length is bounded by the history count, not by
// |W|), so this prices the solver's ingestion arithmetic under
// million-node counts.
func streamFeedBench() func(b *testing.B) {
	return func(b *testing.B) {
		const w, horizon = 1_000_000, 6
		mg, err := multigraph.Random(2, w, horizon, 23)
		if err != nil {
			b.Fatal(err)
		}
		stream, err := mg.NewObservationStream()
		if err != nil {
			b.Fatal(err)
		}
		rounds := make([][]multigraph.IndexedObsEntry, horizon)
		for r := 0; r < horizon; r++ {
			entries, err := stream.Next()
			if err != nil {
				b.Fatal(err)
			}
			rounds[r] = append([]multigraph.IndexedObsEntry(nil), entries...)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := kernel.NewIncrementalSolver()
			for _, entries := range rounds {
				if _, err := s.AddRoundIndexed(entries); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// histMergeBench isolates the history-tree counter's per-round hot path:
// MergeCollect, the word-wise bitset OR that folds a received view into the
// leader's while collecting every newly visible class id. Eight snapshots of
// ~12.5% density over 4096 class ids (64 words) are precomputed; each op
// folds all eight into a fresh view, so the number includes the collect
// loop's bit-extraction, not just the OR.
func histMergeBench() func(b *testing.B) {
	return func(b *testing.B) {
		const words, snaps = 64, 8
		rng := rand.New(rand.NewSource(7))
		snapshots := make([][]uint64, snaps)
		for i := range snapshots {
			s := make([]uint64, words)
			for j := range s {
				s[j] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			}
			snapshots[i] = s
		}
		out := make([]int32, 0, words*64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var v histtree.View
			out = out[:0]
			for _, s := range snapshots {
				out = v.MergeCollect(s, out)
			}
		}
	}
}

// histCountBench runs the full history-tree counting protocol on a static
// 64-node cycle: interning (Extend), view snapshots, merges, and the
// leader's stable-pair solve, end to end, on the sequential engine. The
// cycle is the family the O(n) slope is pinned on, so this is the
// protocol's representative whole-run cost at bench scale.
func histCountBench(b *testing.B) {
	g, err := graph.Cycle(benchNodes)
	if err != nil {
		b.Fatal(err)
	}
	net := dynet.NewStatic(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count, _, err := histtree.Count(net, 0, 3*benchNodes+10, engine.RunSequential)
		if err != nil {
			b.Fatal(err)
		}
		if count != benchNodes {
			b.Fatalf("count = %d, want %d", count, benchNodes)
		}
	}
}

// histCountLargeBench is the same whole-protocol run on a 1024-node cycle:
// ~2.5·n rounds over a million-class history tree. At this scale the
// per-message full-view snapshots of the pre-delta encoding dominated the
// run (quadratic bytes copied per round); the workload pins the counter's
// large-n behavior so the delta-broadcast path cannot silently regress
// back to it. One iteration takes tens of seconds, so the benchmark
// effectively records single-run timings.
func histCountLargeBench(b *testing.B) {
	const n = 1024
	g, err := graph.Cycle(n)
	if err != nil {
		b.Fatal(err)
	}
	net := dynet.NewStatic(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count, _, err := histtree.Count(net, 0, 3*n+10, engine.RunSequential)
		if err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("count = %d, want %d", count, n)
		}
	}
}

func kernelBench(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.WorstCaseCountRounds(364)
		if err != nil {
			b.Fatal(err)
		}
		if res.Count != 364 {
			b.Fatalf("count = %d, want 364", res.Count)
		}
	}
}

// solverBench isolates the coalesced incremental solver's indexed ingestion
// path: precomputed per-round observations of a random 40-node schedule,
// replayed into a fresh solver each iteration.
func solverBench() func(b *testing.B) {
	return func(b *testing.B) {
		const w, horizon = 40, 12
		mg, err := multigraph.Random(2, w, horizon, 11)
		if err != nil {
			b.Fatal(err)
		}
		stream, err := mg.NewObservationStream()
		if err != nil {
			b.Fatal(err)
		}
		rounds := make([][]multigraph.IndexedObsEntry, horizon)
		for r := 0; r < horizon; r++ {
			entries, err := stream.Next()
			if err != nil {
				b.Fatal(err)
			}
			rounds[r] = append([]multigraph.IndexedObsEntry(nil), entries...)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := kernel.NewIncrementalSolver()
			for _, entries := range rounds {
				if _, err := s.AddRoundIndexed(entries); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// rrefBench reduces a fixed random rows×cols matrix with entries in
// [-mag, mag]. mag 9 stays on the int64 Bareiss path throughout; mag 2^32
// overflows within a pivot step or two and spills to big.Int, making the
// fallback cliff visible next to the int64 number. reference selects the
// retained classical big.Rat elimination.
func rrefBench(rows, cols int, mag int64, reference bool) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		m, err := linalg.NewMatrix(rows, cols)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.SetInt64(i, j, rng.Int63n(2*mag+1)-mag)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reference {
				_, _ = m.RREFReference()
			} else {
				_, _ = m.RREF()
			}
		}
	}
}

func sweepBench(dir string) func(b *testing.B) {
	return func(b *testing.B) {
		spec, err := sweep.LoadSpec("smoke")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			journal := filepath.Join(dir, fmt.Sprintf("bench-%d.jsonl", i))
			_, err := sweep.RunCampaign(context.Background(), spec, sweep.CampaignOptions{
				Workers:     2,
				JournalPath: journal,
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = os.Remove(journal)
		}
	}
}

func obsHandleBench(enabled bool) func(b *testing.B) {
	return func(b *testing.B) {
		var (
			c *obs.Counter
			h *obs.Histogram
		)
		if enabled {
			col := obs.New()
			c = col.Counter("bench.counter")
			h = col.Histogram("bench.histogram")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			start := h.Start()
			h.Stop(start)
		}
	}
}
