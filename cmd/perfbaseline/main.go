// Command perfbaseline measures the pinned performance workloads of this
// repo — the sequential engine round loop (with the observability layer
// disabled and enabled), the incremental kernel solve on a worst-case
// schedule, a full smoke sweep campaign, and the raw obs handle
// operations — and writes the results as JSON (BENCH_PR3.json). The
// committed snapshot is the reference point for spotting regressions in
// the hot paths the obs layer instruments; the disabled/enabled benchmark
// pairs quantify the instrumentation overhead itself.
//
// Usage:
//
//	perfbaseline [-o BENCH_PR3.json] [-filter substring]
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure. perfbaseline
// manages the process-wide obs collector itself (the observed-variant
// benchmarks install one), so it does not take the shared -metrics/-pprof
// flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"anondyn/internal/cli"
	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/obs"
	engine "anondyn/internal/runtime"
	"anondyn/internal/sweep"
)

func main() {
	cli.Main("perfbaseline", run)
}

// benchResult is one benchmark's numbers, flattened for stable JSON.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// baseline is the BENCH_PR3.json payload. It carries the toolchain and
// platform (numbers are meaningless without them) but deliberately no
// timestamp, so regenerating on the same machine produces minimal diffs.
type baseline struct {
	Go         string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("perfbaseline", flag.ContinueOnError)
	outPath := fs.String("o", "BENCH_PR3.json", "output `file` (\"-\" for stdout only)")
	filter := fs.String("filter", "", "run only benchmarks whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}

	dir, err := os.MkdirTemp("", "perfbaseline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	workloads := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"runtime/round-loop/disabled", roundLoopBench(false)},
		{"runtime/round-loop/observed", roundLoopBench(true)},
		{"kernel/incremental-solve/n364", kernelBench},
		{"sweep/smoke-campaign", sweepBench(dir)},
		{"obs/counter+histogram/disabled", obsHandleBench(false)},
		{"obs/counter+histogram/enabled", obsHandleBench(true)},
	}

	bl := baseline{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, w := range workloads {
		if *filter != "" && !strings.Contains(w.name, *filter) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped before %s: %w", w.name, err)
		}
		r := testing.Benchmark(w.fn)
		res := benchResult{
			Name:        w.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		bl.Benchmarks = append(bl.Benchmarks, res)
		// Progress is a diagnostic: keep stdout clean so "-o -" pipes.
		fmt.Fprintf(os.Stderr, "%-34s  %12d iter  %14.1f ns/op  %8d B/op  %6d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	if len(bl.Benchmarks) == 0 {
		return cli.Usagef("no benchmarks match -filter %q", *filter)
	}

	data, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		_, err = out.Write(data)
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	return nil
}

// floodProc is the minimal engine workload: node 0 floods a token through
// a static cycle, exercising send, canonical delivery, and receive each
// round with cheap protocol logic so the engine's own cost dominates.
type floodProc struct{ seen bool }

func (p *floodProc) Send(int) engine.Message {
	if p.seen {
		return 1
	}
	return 0
}

func (p *floodProc) Receive(_ int, msgs []engine.Message) {
	for _, m := range msgs {
		if m == 1 {
			p.seen = true
		}
	}
}

func floodCanon(m engine.Message) string {
	if m == 1 {
		return "1"
	}
	return "0"
}

const (
	benchNodes  = 64
	benchRounds = 32
)

func roundLoopBench(observed bool) func(b *testing.B) {
	return func(b *testing.B) {
		prev := obs.Global()
		defer obs.Set(prev)
		if observed {
			obs.Enable()
		} else {
			obs.Set(nil)
		}
		g, err := graph.Cycle(benchNodes)
		if err != nil {
			b.Fatal(err)
		}
		net := dynet.NewStatic(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			procs := make([]engine.Process, benchNodes)
			for j := range procs {
				procs[j] = &floodProc{seen: j == 0}
			}
			cfg := &engine.Config{Net: net, Procs: procs, MaxRounds: benchRounds, Canon: floodCanon}
			if _, err := engine.RunSequential(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func kernelBench(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.WorstCaseCountRounds(364)
		if err != nil {
			b.Fatal(err)
		}
		if res.Count != 364 {
			b.Fatalf("count = %d, want 364", res.Count)
		}
	}
}

func sweepBench(dir string) func(b *testing.B) {
	return func(b *testing.B) {
		spec, err := sweep.LoadSpec("smoke")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			journal := filepath.Join(dir, fmt.Sprintf("bench-%d.jsonl", i))
			_, err := sweep.RunCampaign(context.Background(), spec, sweep.CampaignOptions{
				Workers:     2,
				JournalPath: journal,
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = os.Remove(journal)
		}
	}
}

func obsHandleBench(enabled bool) func(b *testing.B) {
	return func(b *testing.B) {
		var (
			c *obs.Counter
			h *obs.Histogram
		)
		if enabled {
			col := obs.New()
			c = col.Counter("bench.counter")
			h = col.Histogram("bench.histogram")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			start := h.Start()
			h.Stop(start)
		}
	}
}
