package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/cli"
)

// The full suite takes ~1s per benchmark, so tests exercise only the
// cheapest workload through the real pipeline and check the JSON shape.
func TestRunWritesBaselineJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	err := run(context.Background(), []string{"-o", path, "-filter", "obs/counter+histogram/disabled"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bl baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if bl.Go == "" || bl.GOARCH == "" {
		t.Fatalf("missing toolchain metadata: %+v", bl)
	}
	if len(bl.Benchmarks) != 1 || bl.Benchmarks[0].Name != "obs/counter+histogram/disabled" {
		t.Fatalf("unexpected benchmarks: %+v", bl.Benchmarks)
	}
	b := bl.Benchmarks[0]
	if b.Iterations <= 0 || b.NsPerOp <= 0 {
		t.Fatalf("degenerate benchmark result: %+v", b)
	}
	// The documented contract: disabled handles are free of allocation.
	if b.AllocsPerOp != 0 {
		t.Fatalf("disabled obs handles allocate %d allocs/op, want 0", b.AllocsPerOp)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},                    // unknown flag
		{"-filter", "no-such-bench"}, // filter matches nothing
	} {
		err := run(context.Background(), args, &strings.Builder{})
		if cli.ExitCode(err) != cli.ExitUsage {
			t.Fatalf("args %v: want usage error, got %v", args, err)
		}
	}
}
