package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/cli"
)

// The full suite takes ~1s per benchmark, so tests exercise only the
// cheapest workload through the real pipeline and check the JSON shape.
func TestRunWritesBaselineJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	err := run(context.Background(), []string{"-o", path, "-filter", "obs/counter+histogram/disabled"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bl baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if bl.Go == "" || bl.GOARCH == "" {
		t.Fatalf("missing toolchain metadata: %+v", bl)
	}
	if len(bl.Benchmarks) != 1 || bl.Benchmarks[0].Name != "obs/counter+histogram/disabled" {
		t.Fatalf("unexpected benchmarks: %+v", bl.Benchmarks)
	}
	b := bl.Benchmarks[0]
	if b.Iterations <= 0 || b.NsPerOp <= 0 {
		t.Fatalf("degenerate benchmark result: %+v", b)
	}
	// The documented contract: disabled handles are free of allocation.
	if b.AllocsPerOp != 0 {
		t.Fatalf("disabled obs handles allocate %d allocs/op, want 0", b.AllocsPerOp)
	}
}

// mkBaseline builds a synthetic baseline with the given name -> ns/op map.
func mkBaseline(ns map[string]float64) baseline {
	bl := baseline{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64"}
	for name, v := range ns {
		bl.Benchmarks = append(bl.Benchmarks, benchResult{Name: name, Iterations: 100, NsPerOp: v})
	}
	return bl
}

func writeBaseline(t *testing.T, bl baseline) string {
	t.Helper()
	data, err := json.Marshal(bl)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	old := writeBaseline(t, mkBaseline(map[string]float64{"a/one": 100, "b/two": 200}))
	fresh := mkBaseline(map[string]float64{"a/one": 100})
	var sb strings.Builder
	err := compareBaselines(old, fresh, 3.0, "", &sb)
	if err == nil {
		t.Fatalf("baseline benchmark b/two vanished but compare passed; output:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "b/two") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("error does not name the missing benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Fatalf("output does not flag the missing benchmark:\n%s", sb.String())
	}
}

func TestCompareSkipsFilteredOldEntries(t *testing.T) {
	old := writeBaseline(t, mkBaseline(map[string]float64{"a/one": 100, "b/two": 200}))
	fresh := mkBaseline(map[string]float64{"a/one": 100})
	var sb strings.Builder
	// A filtered smoke run only measured a/*: b/two's absence is expected.
	if err := compareBaselines(old, fresh, 3.0, "a/", &sb); err != nil {
		t.Fatalf("filtered compare failed on an excluded benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "skipped") {
		t.Fatalf("output does not note the filtered skip:\n%s", sb.String())
	}
	// But a missing benchmark that DOES match the filter still fails.
	fresh2 := mkBaseline(map[string]float64{"b/two": 200})
	if err := compareBaselines(old, fresh2, 3.0, "a/", &sb); err == nil {
		t.Fatal("missing filter-matched benchmark passed the gate")
	}
}

func TestCompareRegressionThreshold(t *testing.T) {
	old := writeBaseline(t, mkBaseline(map[string]float64{"a/one": 100}))
	slow := mkBaseline(map[string]float64{"a/one": 260})
	if err := compareBaselines(old, slow, 2.5, "", &strings.Builder{}); err == nil {
		t.Fatal("2.6x slowdown passed a 2.5x threshold")
	}
	if err := compareBaselines(old, slow, 0, "", &strings.Builder{}); err != nil {
		t.Fatalf("threshold 0 should disable the slowdown gate: %v", err)
	}
	if err := compareBaselines(old, mkBaseline(map[string]float64{"a/one": 110}), 2.5, "", &strings.Builder{}); err != nil {
		t.Fatalf("parity run tripped the gate: %v", err)
	}
}

func TestCompareTruncatedBaselineFile(t *testing.T) {
	full, err := json.Marshal(mkBaseline(map[string]float64{"a/one": 100, "b/two": 200}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truncated.json")
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cmpErr := compareBaselines(path, mkBaseline(map[string]float64{"a/one": 100}), 3.0, "", &strings.Builder{})
	if cmpErr == nil {
		t.Fatal("truncated baseline file accepted")
	}
	if !strings.Contains(cmpErr.Error(), "truncated.json") {
		t.Fatalf("error does not name the bad file: %v", cmpErr)
	}
	// Through the CLI layer a compare failure must exit 2, the runtime
	// error code the CI gate keys on.
	if code := cli.ExitCode(cmpErr); code != cli.ExitRuntime {
		t.Fatalf("compare failure maps to exit %d, want %d", code, cli.ExitRuntime)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},                    // unknown flag
		{"-filter", "no-such-bench"}, // filter matches nothing
	} {
		err := run(context.Background(), args, &strings.Builder{})
		if cli.ExitCode(err) != cli.ExitUsage {
			t.Fatalf("args %v: want usage error, got %v", args, err)
		}
	}
}
