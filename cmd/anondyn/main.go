// Command anondyn runs counting algorithms against dynamic-network
// adversaries and reports the count and the rounds used.
//
// Usage:
//
//	anondyn -algo leaderstate -n 40            # exact counter vs worst case
//	anondyn -algo oracle -n 40                 # degree-oracle O(1) counter
//	anondyn -algo star -n 40                   # one-round star counter
//	anondyn -algo pushsum -n 40 -seed 7        # gossip estimate, fair churn
//	anondyn -algo chain -n 40 -chain 5         # Corollary 1 end to end
//	anondyn -algo star -n 40 -engine sharded   # same, on the sharded engine
//	anondyn -algo upperbound -n 40             # degree-bound baseline [15]
//	anondyn -algo anonymous -n 40              # anonymous-relay threading
//	anondyn -algo unconscious -n 40            # conscious vs unconscious [12]
//	anondyn -bound -n 123456                   # print the Theorem 1 bound
//	anondyn -pair -n 13                        # show the adversarial pair
//
// The run context is canceled on SIGINT/SIGTERM or when -timeout elapses;
// engine-backed algorithms then stop at the next round boundary. Exit
// codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON snapshot of the run's counters and histograms (engine rounds,
// messages delivered, per-round wall time, solver calls) on exit, and
// -pprof <addr> serves live /debug/pprof, /debug/vars, and /metrics.
// Without either flag the instrumentation is disabled and costs nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"anondyn/internal/chainnet"
	"anondyn/internal/cli"
	"anondyn/internal/core"
	"anondyn/internal/counting"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func main() {
	cli.Main("anondyn", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("anondyn", flag.ContinueOnError)
	algo := fs.String("algo", "", "counting algorithm: leaderstate | oracle | star | pushsum | chain | upperbound")
	n := fs.Int("n", 13, "number of counted nodes (|W| for PD2 algorithms, |V| for star)")
	chainLen := fs.Int("chain", 3, "static chain length for -algo chain")
	seed := fs.Int64("seed", 1, "seed for randomized adversaries")
	bound := fs.Bool("bound", false, "print the exact Theorem 1 bound for -n and exit")
	pair := fs.Bool("pair", false, "construct and describe the adversarial pair for -n and exit")
	engineName := fs.String("engine", "", "round engine: sequential (default) | concurrent | sharded")
	concurrent := fs.Bool("concurrent", false, "use the goroutine-per-node engine (alias for -engine concurrent)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *n < 1 {
		return cli.Usagef("-n must be >= 1, got %d", *n)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if *concurrent && *engineName == "" {
		*engineName = "concurrent"
	}
	var engine runtime.Engine
	switch *engineName {
	case "", "sequential":
		engine = runtime.SequentialEngine(ctx)
	case "concurrent":
		engine = runtime.ConcurrentEngine(ctx)
	case "sharded":
		engine = runtime.ShardedEngine(ctx)
	default:
		return cli.Usagef("unknown engine %q (want sequential, concurrent, or sharded)", *engineName)
	}
	switch {
	case *bound:
		return printBound(out, *n)
	case *pair:
		return printPair(out, *n)
	}
	switch *algo {
	case "leaderstate":
		return runLeaderState(out, *n)
	case "oracle":
		return runOracle(out, *n, engine)
	case "star":
		return runStar(out, *n, engine)
	case "pushsum":
		return runPushSum(out, *n, *seed, engine)
	case "chain":
		return runChain(out, *n, *chainLen, engine)
	case "upperbound":
		return runUpperBound(out, *n, engine)
	case "anonymous":
		return runAnonymous(out, *n)
	case "unconscious":
		return runUnconscious(out, *n)
	case "":
		return cli.Usagef("one of -algo, -bound, -pair is required")
	default:
		return cli.Usagef("unknown algorithm %q", *algo)
	}
}

func printBound(out io.Writer, n int) error {
	t := core.MaxIndistinguishableRounds(n)
	fmt.Fprintf(out, "size n = %d\n", n)
	fmt.Fprintf(out, "indistinguishable for      T(n) = %d completed rounds\n", t)
	fmt.Fprintf(out, "counting lower bound     T(n)+1 = %d rounds\n", t+1)
	fmt.Fprintf(out, "kernel threshold   (3^%d - 1)/2 = %d <= n\n", t, core.MinSizeForRounds(t))
	return nil
}

func printPair(out io.Writer, n int) error {
	p, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	if err := p.Verify(); err != nil {
		return err
	}
	fmt.Fprintf(out, "adversarial pair for n = %d:\n", n)
	fmt.Fprintf(out, "  M  has |W| = %d, M' has |W| = %d\n", p.M.W(), p.MPrime.W())
	fmt.Fprintf(out, "  leader views identical through %d completed rounds (verified)\n", p.Rounds)
	ext, err := p.Extend(2)
	if err != nil {
		return err
	}
	if div, found := ext.FirstDivergence(); found {
		fmt.Fprintf(out, "  views diverge at round %d once the schedule opens up\n", div)
	}
	view, err := p.M.LeaderView(p.Rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  shared leader view: %s\n", view.Canonical())
	return nil
}

func runLeaderState(out io.Writer, n int) error {
	res, err := core.WorstCaseCountRounds(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "leader-state counter vs worst-case adversary:\n")
	fmt.Fprintf(out, "  counted %d nodes in %d rounds (exact bound: %d)\n",
		res.Count, res.Rounds, core.LowerBoundRounds(n))
	return nil
}

func runOracle(out io.Writer, n int, engine counting.Runner) error {
	net, v1, v2 := restrictedNet(n)
	count, rounds, err := counting.OracleCount(net, 0, v1, v2, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "degree-oracle counter on restricted G(PD)_2:\n")
	fmt.Fprintf(out, "  counted %d nodes in %d rounds (anonymous bound would be %d)\n",
		count, rounds, core.LowerBoundRounds(n))
	return nil
}

func runStar(out io.Writer, n int, engine counting.Runner) error {
	star, err := graph.Star(n+1, 0)
	if err != nil {
		return err
	}
	count, rounds, err := counting.StarCount(dynet.NewStatic(star), 0, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "star counter on G(PD)_1:\n")
	fmt.Fprintf(out, "  counted %d nodes in %d round(s)\n", count, rounds)
	return nil
}

func runChain(out io.Writer, n, chainLen int, engine counting.Runner) error {
	nw, err := chainnet.Build(n, chainLen)
	if err != nil {
		return err
	}
	bound := core.LowerBoundRounds(n)
	res, err := chainnet.RunCount(nw, bound+nw.Delay()+5, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chain-composed network (Corollary 1), chain length %d:\n", chainLen)
	fmt.Fprintf(out, "  counted %d nodes in %d rounds = delay %d + bound %d\n",
		res.Count, res.Rounds, nw.Delay(), bound)
	return nil
}

func runUpperBound(out io.Writer, n int, engine counting.Runner) error {
	const k = 2
	net, _, v2 := restrictedNet(n)
	maxDeg := 0
	for r := 0; r < 8; r++ {
		g := net.Snapshot(r)
		for v := 0; v < net.N(); v++ {
			if d := g.Degree(graph.NodeID(v)); d > maxDeg {
				maxDeg = d
			}
		}
	}
	res, err := counting.UpperBoundCount(net, 0, maxDeg, 8, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "degree-bound upper-bound counter [15] on restricted G(PD)_%d:\n", k)
	fmt.Fprintf(out, "  bound %d for true size %d (depth %d, degree bound %d)\n",
		res.Bound, 1+k+len(v2), res.Depth, maxDeg)
	return nil
}

// restrictedNet builds the rotating restricted G(PD)_2 network used by the
// oracle and upper-bound subcommands.
func restrictedNet(outer int) (dynet.Dynamic, []graph.NodeID, []graph.NodeID) {
	const k = 2
	total := 1 + k + outer
	v1 := []graph.NodeID{1, 2}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(total, func(r int) *graph.Graph {
		g := graph.New(total)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			_ = g.AddEdge(v1[(i+r)%k], w)
			if i%2 == 1 {
				_ = g.AddEdge(v1[(i+r+1)%k], w)
			}
		}
		return g
	})
	return net, v1, v2
}

func runAnonymous(out io.Writer, n int) error {
	pair, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return err
	}
	res, err := core.AnonymousCountRounds(ext.M, ext.M.Horizon())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "anonymous-relay leader (content threading) vs worst-case adversary:\n")
	fmt.Fprintf(out, "  counted %d nodes in %d rounds — identical to the labeled bound %d\n",
		res.Count, res.Rounds, core.LowerBoundRounds(n))
	return nil
}

func runUnconscious(out io.Writer, n int) error {
	pair, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return err
	}
	minRes, err := core.UnconsciousCount(ext.M, core.GuessMin, ext.M.Horizon())
	if err != nil {
		return err
	}
	maxRes, err := core.UnconsciousCount(ext.M, core.GuessMax, ext.M.Horizon())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "conscious vs unconscious counting on the worst case (n=%d):\n", n)
	fmt.Fprintf(out, "  conscious termination     : round %d\n", minRes.ConsciousAt)
	fmt.Fprintf(out, "  min-guess stable on truth : round %d\n", minRes.CorrectFrom)
	fmt.Fprintf(out, "  max-guess stable on truth : round %d (fooled by the size-%d twin)\n",
		maxRes.CorrectFrom, n+1)
	return nil
}

func runPushSum(out io.Writer, n int, seed int64, engine counting.Runner) error {
	net, err := dynet.NewRandomChurn(n+1, 0.3, seed)
	if err != nil {
		return err
	}
	res, err := counting.PushSumEstimate(net, 0, 1e-6, 3, 5000, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "push-sum estimator under fair churn (seed %d):\n", seed)
	fmt.Fprintf(out, "  estimate %.4f for true size %d, %d rounds, converged=%v\n",
		res.Estimate, n+1, res.Rounds, res.Converged)
	return nil
}
