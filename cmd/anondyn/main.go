// Command anondyn runs counting algorithms against dynamic-network
// adversaries and reports the count and the rounds used.
//
// The -algo flag selects an entry of the counting-algorithm zoo
// (counting.Registry); -adversary selects the network family, defaulting to
// a family compatible with the chosen algorithm. Incompatible combinations
// are rejected up front with the model assumption that failed.
//
// Usage:
//
//	anondyn -algo histtree -n 100              # history-tree counter, cycle
//	anondyn -algo histtree -adversary churn    # same, fair random churn
//	anondyn -algo leaderstate -n 40            # the paper's counter vs worst case
//	anondyn -algo oracle -n 40                 # layout-fed degree-oracle counter
//	anondyn -algo degreeoracle -n 40           # role-discovering O(1) counter
//	anondyn -algo star -n 40                   # one-round star counter
//	anondyn -algo histtree -adversary tinterval -n 20   # stability windows
//	anondyn -algo pushsum -adversary joinleave -n 20    # join/leave churn
//	anondyn -algo pushsum -n 40 -seed 7        # gossip estimate, fair churn
//	anondyn -algo chain -n 40 -chain 5         # Corollary 1 end to end
//	anondyn -algo star -n 40 -engine sharded   # same, on the sharded engine
//	anondyn -algo upperbound -n 40             # degree-bound baseline [15]
//	anondyn -algo anonymous -n 40              # anonymous-relay threading
//	anondyn -algo unconscious -n 40            # conscious vs unconscious [12]
//	anondyn -bound -n 123456                   # print the Theorem 1 bound
//	anondyn -pair -n 13                        # show the adversarial pair
//
// The run context is canceled on SIGINT/SIGTERM or when -timeout elapses;
// engine-backed algorithms then stop at the next round boundary. Exit
// codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON snapshot of the run's counters and histograms (engine rounds,
// messages delivered, per-round wall time, solver calls) on exit, and
// -pprof <addr> serves live /debug/pprof, /debug/vars, and /metrics.
// Without either flag the instrumentation is disabled and costs nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"anondyn/internal/chainnet"
	"anondyn/internal/cli"
	"anondyn/internal/core"
	"anondyn/internal/counting"
)

func main() {
	cli.Main("anondyn", run)
}

// legacyAlgos are the subcommands predating the registry: experiments over
// the abstract multigraph model rather than engine-backed protocols.
var legacyAlgos = []string{"chain", "anonymous", "unconscious"}

// defaultAdversary picks the network family each registry algorithm is
// demonstrated on when -adversary is not given. incremental defaults to
// worstcase, not cycle: its drain length τ(k) = 3(k+1)² is calibrated for
// fast-mixing families, and on a cycle the accepting guess grows roughly
// quadratically in n (measured: n=12→k=27, n=16→54, n=20→92, n=24→141),
// so cycles outgrow the IncrementalRounds(3n) budget from n≈16 on.
var defaultAdversary = map[string]string{
	"histtree":     "cycle",
	"idcount":      "cycle",
	"incremental":  "worstcase",
	"leaderstate":  "worstcase",
	"upperbound":   "restricted",
	"oracle":       "restricted",
	"degreeoracle": "restricted",
	"star":         "star",
	"pushsum":      "churn",
}

var adversaryNames = []string{"worstcase", "cycle", "star", "churn", "restricted", "flooddelay", "tinterval", "joinleave", "randomized"}

// compatibleFamilies probes each adversary family with a tiny instance and
// returns, per algorithm, the families its Requirements accept — so -help
// answers "what can I run this on" from the registry itself rather than a
// hand-maintained table that would drift.
func compatibleFamilies() map[string][]string {
	probes := make(map[string]*counting.Instance, len(adversaryNames))
	for _, fam := range adversaryNames {
		if inst, err := buildInstance(fam, 4, 1); err == nil {
			probes[fam] = inst
		}
	}
	out := make(map[string][]string)
	for _, a := range counting.Registry() {
		for _, fam := range adversaryNames {
			if inst := probes[fam]; inst != nil && a.Requires.Validate(inst) == nil {
				out[a.Name] = append(out[a.Name], fam)
			}
		}
	}
	return out
}

func algoUsage() string {
	var b strings.Builder
	b.WriteString("counting algorithm; registry entries:\n")
	compat := compatibleFamilies()
	for _, a := range counting.Registry() {
		fmt.Fprintf(&b, "    \t%-12s %s — %s\n", a.Name, a.Semantics, a.Doc)
		fmt.Fprintf(&b, "    \t%-12s   adversaries: %s\n", "", strings.Join(compat[a.Name], " "))
	}
	fmt.Fprintf(&b, "    \tlegacy: %s", strings.Join(legacyAlgos, " | "))
	return b.String()
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("anondyn", flag.ContinueOnError)
	algo := fs.String("algo", "", algoUsage())
	adversary := fs.String("adversary", "", "network family: "+strings.Join(adversaryNames, " | ")+" (default: per-algorithm)")
	n := fs.Int("n", 13, "problem size: |W| for worstcase, outer nodes for restricted, non-leader nodes for star/churn, total nodes otherwise")
	chainLen := fs.Int("chain", 3, "static chain length for -algo chain")
	seed := fs.Int64("seed", 1, "seed for randomized adversaries")
	bound := fs.Bool("bound", false, "print the exact Theorem 1 bound for -n and exit")
	pair := fs.Bool("pair", false, "construct and describe the adversarial pair for -n and exit")
	engineName := fs.String("engine", "", "round engine: sequential (default) | concurrent | sharded")
	concurrent := fs.Bool("concurrent", false, "use the goroutine-per-node engine (alias for -engine concurrent)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *n < 1 {
		return cli.Usagef("-n must be >= 1, got %d", *n)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if *concurrent && *engineName == "" {
		*engineName = "concurrent"
	}
	engine, err := counting.EngineByName(ctx, *engineName)
	if err != nil {
		return cli.Usagef("unknown engine %q (want sequential, concurrent, or sharded)", *engineName)
	}
	switch {
	case *bound:
		return printBound(out, *n)
	case *pair:
		return printPair(out, *n)
	}
	switch *algo {
	case "chain":
		return runChain(out, *n, *chainLen, engine)
	case "anonymous":
		return runAnonymous(out, *n)
	case "unconscious":
		return runUnconscious(out, *n)
	case "":
		return cli.Usagef("one of -algo, -bound, -pair is required")
	}
	entry, err := counting.Lookup(*algo)
	if err != nil {
		return cli.Usagef("unknown algorithm %q (registry: %s; legacy: %s)",
			*algo, strings.Join(counting.Names(), " "), strings.Join(legacyAlgos, " "))
	}
	return runRegistry(out, entry, *adversary, *n, *seed, engine)
}

// buildInstance constructs the named adversary family at problem size n.
func buildInstance(adversary string, n int, seed int64) (*counting.Instance, error) {
	switch adversary {
	case "worstcase":
		return counting.WorstCaseInstance(n)
	case "cycle":
		return counting.CycleInstance(n)
	case "star":
		return counting.StarInstance(n + 1)
	case "churn":
		return counting.ChurnInstance(n+1, seed)
	case "restricted":
		return counting.RestrictedPD2Instance(n)
	case "flooddelay":
		return counting.FloodDelayInstance(n)
	case "tinterval":
		return counting.TIntervalInstance(n, 3, seed)
	case "joinleave":
		return counting.JoinLeaveInstance(n, seed)
	case "randomized":
		return counting.RandomizedInstance(n, seed)
	default:
		return nil, cli.Usagef("unknown adversary %q (want %s)", adversary, strings.Join(adversaryNames, " | "))
	}
}

// runRegistry executes one registry algorithm on the chosen (or default)
// adversary, rejecting incompatible combinations before the run with the
// model assumption that failed.
func runRegistry(out io.Writer, entry *counting.Algorithm, adversary string, n int, seed int64, engine counting.Runner) error {
	if adversary == "" {
		adversary = defaultAdversary[entry.Name]
	}
	inst, err := buildInstance(adversary, n, seed)
	if err != nil {
		return err
	}
	if err := entry.Requires.Validate(inst); err != nil {
		return cli.Usagef("%v; the default family for -algo %s is -adversary %s",
			err, entry.Name, defaultAdversary[entry.Name])
	}
	res, err := entry.Run(inst, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "algorithm %s (%s) on %s:\n", entry.Name, entry.Semantics, inst.Name)
	fmt.Fprintf(out, "  %s\n", entry.Doc)
	switch entry.Semantics {
	case counting.SemExact:
		fmt.Fprintf(out, "  counted %d nodes in %d round(s) (true size %d)\n", res.Count, res.Rounds, inst.TrueN)
	case counting.SemUpperBound:
		fmt.Fprintf(out, "  bound %d in %d round(s) (true size %d)\n", res.Count, res.Rounds, inst.TrueN)
	case counting.SemEstimate:
		fmt.Fprintf(out, "  estimate %d after %d round(s) (true size %d)\n", res.Count, res.Rounds, inst.TrueN)
	}
	return nil
}

func printBound(out io.Writer, n int) error {
	t := core.MaxIndistinguishableRounds(n)
	fmt.Fprintf(out, "size n = %d\n", n)
	fmt.Fprintf(out, "indistinguishable for      T(n) = %d completed rounds\n", t)
	fmt.Fprintf(out, "counting lower bound     T(n)+1 = %d rounds\n", t+1)
	fmt.Fprintf(out, "kernel threshold   (3^%d - 1)/2 = %d <= n\n", t, core.MinSizeForRounds(t))
	return nil
}

func printPair(out io.Writer, n int) error {
	p, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	if err := p.Verify(); err != nil {
		return err
	}
	fmt.Fprintf(out, "adversarial pair for n = %d:\n", n)
	fmt.Fprintf(out, "  M  has |W| = %d, M' has |W| = %d\n", p.M.W(), p.MPrime.W())
	fmt.Fprintf(out, "  leader views identical through %d completed rounds (verified)\n", p.Rounds)
	ext, err := p.Extend(2)
	if err != nil {
		return err
	}
	if div, found := ext.FirstDivergence(); found {
		fmt.Fprintf(out, "  views diverge at round %d once the schedule opens up\n", div)
	}
	view, err := p.M.LeaderView(p.Rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  shared leader view: %s\n", view.Canonical())
	return nil
}

func runChain(out io.Writer, n, chainLen int, engine counting.Runner) error {
	nw, err := chainnet.Build(n, chainLen)
	if err != nil {
		return err
	}
	bound := core.LowerBoundRounds(n)
	res, err := chainnet.RunCount(nw, bound+nw.Delay()+5, engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chain-composed network (Corollary 1), chain length %d:\n", chainLen)
	fmt.Fprintf(out, "  counted %d nodes in %d rounds = delay %d + bound %d\n",
		res.Count, res.Rounds, nw.Delay(), bound)
	return nil
}

func runAnonymous(out io.Writer, n int) error {
	pair, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return err
	}
	res, err := core.AnonymousCountRounds(ext.M, ext.M.Horizon())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "anonymous-relay leader (content threading) vs worst-case adversary:\n")
	fmt.Fprintf(out, "  counted %d nodes in %d rounds — identical to the labeled bound %d\n",
		res.Count, res.Rounds, core.LowerBoundRounds(n))
	return nil
}

func runUnconscious(out io.Writer, n int) error {
	pair, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return err
	}
	minRes, err := core.UnconsciousCount(ext.M, core.GuessMin, ext.M.Horizon())
	if err != nil {
		return err
	}
	maxRes, err := core.UnconsciousCount(ext.M, core.GuessMax, ext.M.Horizon())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "conscious vs unconscious counting on the worst case (n=%d):\n", n)
	fmt.Fprintf(out, "  conscious termination     : round %d\n", minRes.ConsciousAt)
	fmt.Fprintf(out, "  min-guess stable on truth : round %d\n", minRes.CorrectFrom)
	fmt.Fprintf(out, "  max-guess stable on truth : round %d (fooled by the size-%d twin)\n",
		maxRes.CorrectFrom, n+1)
	return nil
}
