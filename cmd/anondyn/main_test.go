package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/cli"
)

// capture runs the CLI's run() with stdout redirected to a temp file and
// returns the output.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(context.Background(), args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestBoundCommand(t *testing.T) {
	out, err := capture(t, []string{"-bound", "-n", "40"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T(n) = 4", "T(n)+1 = 5", "= 40 <= n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPairCommand(t *testing.T) {
	out, err := capture(t, []string{"-pair", "-n", "4"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|W| = 4", "|W| = 5", "through 2 completed rounds", "diverge at round 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLeaderStateCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "leaderstate", "-n", "13"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 13 nodes in 4 rounds (exact bound: 4)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestOracleCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "oracle", "-n", "20"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 23 nodes in 2 rounds") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestStarCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "star", "-n", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 10 nodes in 1 round") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestPushSumCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "pushsum", "-n", "9", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true size 10") || !strings.Contains(out, "converged=true") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestChainCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "chain", "-n", "13", "-chain", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 13 nodes in 7 rounds = delay 3 + bound 4") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestUpperBoundCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "upperbound", "-n", "20"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true size 23") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestConcurrentFlag(t *testing.T) {
	out, err := capture(t, []string{"-algo", "star", "-n", "5", "-concurrent"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 6 nodes") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestEngineFlag(t *testing.T) {
	for _, eng := range []string{"sequential", "concurrent", "sharded"} {
		out, err := capture(t, []string{"-algo", "star", "-n", "5", "-engine", eng})
		if err != nil {
			t.Fatalf("-engine %s: %v", eng, err)
		}
		if !strings.Contains(out, "counted 6 nodes") {
			t.Fatalf("-engine %s output:\n%s", eng, out)
		}
	}
	if _, err := capture(t, []string{"-algo", "star", "-n", "5", "-engine", "turbo"}); err == nil {
		t.Fatal("unknown engine accepted")
	} else if got := cli.ExitCode(err); got != cli.ExitUsage {
		t.Fatalf("unknown engine exits %d, want %d", got, cli.ExitUsage)
	}
}

func TestErrorsAndUsage(t *testing.T) {
	cases := [][]string{
		{},                           // nothing requested
		{"-algo", "nonsense"},        // unknown algorithm
		{"-algo", "star", "-n", "0"}, // bad n
		{"-badflag"},                 // flag parse error
	}
	for _, args := range cases {
		_, err := capture(t, args)
		if err == nil {
			t.Fatalf("args %v should error", args)
		}
		if got := cli.ExitCode(err); got != cli.ExitUsage {
			t.Fatalf("args %v: exit code %d, want %d (usage)", args, got, cli.ExitUsage)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, err := capture(t, []string{"-h"})
	if got := cli.ExitCode(err); got != cli.ExitSuccess {
		t.Fatalf("-h: exit code %d (err %v), want 0", got, err)
	}
}

func TestCanceledRunIsRuntimeFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-algo", "star", "-n", "5"}, &sb)
	if err == nil {
		t.Fatal("canceled context should abort the run")
	}
	if got := cli.ExitCode(err); got != cli.ExitRuntime {
		t.Fatalf("canceled run: exit code %d (err %v), want %d", got, err, cli.ExitRuntime)
	}
}

func TestAnonymousCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "anonymous", "-n", "13"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 13 nodes in 4 rounds") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestUnconsciousCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "unconscious", "-n", "13"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conscious termination     : round 4", "fooled by the size-14 twin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
