package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/cli"
	"anondyn/internal/counting"
)

// capture runs the CLI's run() with stdout redirected to a temp file and
// returns the output.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(context.Background(), args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestBoundCommand(t *testing.T) {
	out, err := capture(t, []string{"-bound", "-n", "40"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T(n) = 4", "T(n)+1 = 5", "= 40 <= n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPairCommand(t *testing.T) {
	out, err := capture(t, []string{"-pair", "-n", "4"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|W| = 4", "|W| = 5", "through 2 completed rounds", "diverge at round 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLeaderStateCommand(t *testing.T) {
	// The registry normalizes every count to total network size |V|: for
	// the worst-case family with |W| = 13 that is 1 + 2 + 13 = 16.
	out, err := capture(t, []string{"-algo", "leaderstate", "-n", "13"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 16 nodes") || !strings.Contains(out, "true size 16") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestOracleCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "oracle", "-n", "20"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 23 nodes in 2 round(s)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestStarCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "star", "-n", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 10 nodes in 1 round") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestPushSumCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "pushsum", "-n", "9", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimate 10") || !strings.Contains(out, "true size 10") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestHistTreeCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "histtree", "-n", "40"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 40 nodes") || !strings.Contains(out, "cycle-40") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestIncrementalCommand(t *testing.T) {
	// The default family is worstcase (see defaultAdversary): -n 5 is the
	// |W|=5 Lemma-5 schedule, so the true size is |V| = 5 + 3.
	out, err := capture(t, []string{"-algo", "incremental", "-n", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 8 nodes") || !strings.Contains(out, "worstcase-5") {
		t.Fatalf("output:\n%s", out)
	}
	// The slow-mixing caveat documented on defaultAdversary: an explicit
	// small cycle still works.
	out, err = capture(t, []string{"-algo", "incremental", "-adversary", "cycle", "-n", "6"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 6 nodes") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestAdversaryFlag(t *testing.T) {
	out, err := capture(t, []string{"-algo", "histtree", "-n", "11", "-adversary", "flooddelay"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 11 nodes") || !strings.Contains(out, "flood-delay-11") {
		t.Fatalf("output:\n%s", out)
	}
}

// Incompatible algorithm/adversary combinations must be rejected as usage
// errors naming the missing model assumption and the compatible default.
func TestAdversaryMismatchRejected(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-algo", "oracle", "-adversary", "cycle", "-n", "6"}, "restricted"},
		{[]string{"-algo", "leaderstate", "-adversary", "cycle", "-n", "6"}, "multigraph schedule"},
		{[]string{"-algo", "pushsum", "-adversary", "cycle", "-n", "6"}, "fair"},
		{[]string{"-algo", "star", "-adversary", "cycle", "-n", "6"}, "adjacent"},
		{[]string{"-algo", "histtree", "-adversary", "warp", "-n", "6"}, "unknown adversary"},
	}
	for _, tc := range cases {
		_, err := capture(t, tc.args)
		if err == nil {
			t.Fatalf("args %v accepted, want rejection", tc.args)
		}
		if got := cli.ExitCode(err); got != cli.ExitUsage {
			t.Fatalf("args %v: exit code %d, want %d (usage); err: %v", tc.args, got, cli.ExitUsage, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

func TestChainCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "chain", "-n", "13", "-chain", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 13 nodes in 7 rounds = delay 3 + bound 4") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestUpperBoundCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "upperbound", "-n", "20"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true size 23") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestConcurrentFlag(t *testing.T) {
	out, err := capture(t, []string{"-algo", "star", "-n", "5", "-concurrent"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 6 nodes") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestEngineFlag(t *testing.T) {
	for _, eng := range []string{"sequential", "concurrent", "sharded"} {
		out, err := capture(t, []string{"-algo", "star", "-n", "5", "-engine", eng})
		if err != nil {
			t.Fatalf("-engine %s: %v", eng, err)
		}
		if !strings.Contains(out, "counted 6 nodes") {
			t.Fatalf("-engine %s output:\n%s", eng, out)
		}
	}
	if _, err := capture(t, []string{"-algo", "star", "-n", "5", "-engine", "turbo"}); err == nil {
		t.Fatal("unknown engine accepted")
	} else if got := cli.ExitCode(err); got != cli.ExitUsage {
		t.Fatalf("unknown engine exits %d, want %d", got, cli.ExitUsage)
	}
}

func TestErrorsAndUsage(t *testing.T) {
	cases := [][]string{
		{},                           // nothing requested
		{"-algo", "nonsense"},        // unknown algorithm
		{"-algo", "star", "-n", "0"}, // bad n
		{"-badflag"},                 // flag parse error
	}
	for _, args := range cases {
		_, err := capture(t, args)
		if err == nil {
			t.Fatalf("args %v should error", args)
		}
		if got := cli.ExitCode(err); got != cli.ExitUsage {
			t.Fatalf("args %v: exit code %d, want %d (usage)", args, got, cli.ExitUsage)
		}
	}
}

// TestAlgoUsageGolden pins the -help algorithm listing, including the
// registry-derived per-algorithm adversary compatibility lines. Regenerate
// with UPDATE_GOLDEN=1 go test ./cmd/anondyn/ after intentional changes.
func TestAlgoUsageGolden(t *testing.T) {
	got := algoUsage() + "\n"
	golden := filepath.Join("testdata", "algo_usage.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Errorf("algoUsage drifted from the golden file (regenerate with UPDATE_GOLDEN=1 if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The structural claims behind the golden file, asserted directly so a
	// regenerated file cannot silently drop them: every registry algorithm
	// appears with a non-empty adversary list, and the new families appear
	// where the registry accepts them.
	compat := compatibleFamilies()
	for _, name := range counting.Names() {
		if len(compat[name]) == 0 {
			t.Errorf("algorithm %s lists no compatible adversaries", name)
		}
	}
	for algo, fam := range map[string]string{
		"histtree":     "tinterval",
		"pushsum":      "joinleave",
		"idcount":      "randomized",
		"degreeoracle": "restricted",
	} {
		if !strings.Contains(strings.Join(compat[algo], " "), fam) {
			t.Errorf("%s compatibility %v misses family %s", algo, compat[algo], fam)
		}
	}
}

func TestDegreeOracleCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "degreeoracle", "-n", "20"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 23 nodes in 4 round(s)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestNewAdversaryFlags(t *testing.T) {
	out, err := capture(t, []string{"-algo", "histtree", "-n", "12", "-adversary", "tinterval", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 12 nodes") || !strings.Contains(out, "tinterval3-12-seed5") {
		t.Fatalf("output:\n%s", out)
	}
	out, err = capture(t, []string{"-algo", "histtree", "-n", "9", "-adversary", "randomized", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 9 nodes") || !strings.Contains(out, "randomized-9-seed2") {
		t.Fatalf("output:\n%s", out)
	}
	out, err = capture(t, []string{"-algo", "pushsum", "-n", "10", "-adversary", "joinleave", "-seed", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "joinleave-10-seed4") || !strings.Contains(out, "estimate") {
		t.Fatalf("output:\n%s", out)
	}
	// Churn-isolating families are rejected for connectivity-requiring
	// algorithms with the declared property named.
	_, err = capture(t, []string{"-algo", "histtree", "-n", "10", "-adversary", "joinleave"})
	if err == nil || !strings.Contains(err.Error(), "churn") {
		t.Fatalf("histtree on joinleave: %v, want churn rejection", err)
	}
	if got := cli.ExitCode(err); got != cli.ExitUsage {
		t.Fatalf("histtree on joinleave: exit code %d, want %d", got, cli.ExitUsage)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, err := capture(t, []string{"-h"})
	if got := cli.ExitCode(err); got != cli.ExitSuccess {
		t.Fatalf("-h: exit code %d (err %v), want 0", got, err)
	}
}

func TestCanceledRunIsRuntimeFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-algo", "star", "-n", "5"}, &sb)
	if err == nil {
		t.Fatal("canceled context should abort the run")
	}
	if got := cli.ExitCode(err); got != cli.ExitRuntime {
		t.Fatalf("canceled run: exit code %d (err %v), want %d", got, err, cli.ExitRuntime)
	}
}

func TestAnonymousCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "anonymous", "-n", "13"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counted 13 nodes in 4 rounds") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestUnconsciousCommand(t *testing.T) {
	out, err := capture(t, []string{"-algo", "unconscious", "-n", "13"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conscious termination     : round 4", "fooled by the size-14 twin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
