package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderAll(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 3 Figure-1 rounds + Figure 2 + Figure 3 M (1 round) + M' (1 round)
	// + Figure 4 M (2 rounds) + M' (2 rounds) = 10 files.
	if len(entries) != 10 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("got %d files: %v", len(entries), names)
	}
	data, err := os.ReadFile(filepath.Join(dir, "f1_round0.dot"))
	if err != nil {
		t.Fatal(err)
	}
	dot := string(data)
	if !strings.Contains(dot, "graph figure1_round0 {") {
		t.Fatalf("bad DOT header:\n%s", dot)
	}
	if !strings.Contains(dot, "doublecircle") {
		t.Fatal("leader not highlighted")
	}
	if got := strings.Count(sb.String(), "wrote "); got != 10 {
		t.Fatalf("reported %d writes", got)
	}
}

func TestRenderBadDir(t *testing.T) {
	var sb strings.Builder
	// A file path cannot be created as a directory.
	tmp := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-dir", filepath.Join(tmp, "sub")}, &sb); err == nil {
		t.Fatal("unusable directory should error")
	}
	if err := run(context.Background(), []string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag should error")
	}
}
