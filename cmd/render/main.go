// Command render writes the paper's figures as Graphviz DOT files: the
// three rounds of Figure 1's dynamic graph, the Figure 2 transformation
// (ℳ(DBL₃) image in 𝒢(PD)₂), and the PD₂ realizations of the Figure 3 and
// Figure 4 indistinguishable pairs.
//
// Usage:
//
//	render -dir docs/figures [-timeout 30s]
//
// Rendering honors SIGINT/SIGTERM and -timeout, stopping between files.
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON metrics snapshot on exit, -pprof <addr> serves live /debug/pprof,
// /debug/vars, and /metrics. Without either flag the instrumentation is
// disabled and costs nothing.
//
// Render the .dot files with `dot -Tpng f1_round0.dot -o f1_round0.png`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"anondyn/internal/cli"
	"anondyn/internal/figures"
	"anondyn/internal/multigraph"
)

func main() {
	cli.Main("render", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	dir := fs.String("dir", "figures", "output directory for .dot files")
	timeout := fs.Duration("timeout", 0, "abort rendering after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	files, err := renderAll(ctx, *dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		fmt.Fprintln(out, "wrote", f)
	}
	return nil
}

func renderAll(ctx context.Context, dir string) ([]string, error) {
	var files []string
	write := func(name, dot string) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped before writing %s: %w", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
			return err
		}
		files = append(files, path)
		return nil
	}

	f1, err := figures.NewFigure1()
	if err != nil {
		return nil, err
	}
	for r := 0; r < f1.Period; r++ {
		name := fmt.Sprintf("f1_round%d.dot", r)
		if err := write(name, f1.Net.Snapshot(r).DOT(fmt.Sprintf("figure1_round%d", r), f1.Leader)); err != nil {
			return nil, err
		}
	}

	f2, err := figures.NewFigure2()
	if err != nil {
		return nil, err
	}
	if err := write("f2_pd2.dot", f2.Net.Snapshot(0).DOT("figure2_pd2_image", f2.Layout.Leader)); err != nil {
		return nil, err
	}

	pairDot := func(m *multigraph.Multigraph, name string) error {
		net, layout, err := m.ToPD2()
		if err != nil {
			return err
		}
		var lastErr error
		for r := 0; r < m.Horizon(); r++ {
			g := net.Snapshot(r)
			lastErr = write(fmt.Sprintf("%s_round%d.dot", name, r),
				g.DOT(fmt.Sprintf("%s_round%d", name, r), layout.Leader))
			if lastErr != nil {
				return lastErr
			}
		}
		return nil
	}
	f3, err := figures.NewFigure3()
	if err != nil {
		return nil, err
	}
	if err := pairDot(f3.M, "f3_m"); err != nil {
		return nil, err
	}
	if err := pairDot(f3.MPrime, "f3_mprime"); err != nil {
		return nil, err
	}
	f4, err := figures.NewFigure4()
	if err != nil {
		return nil, err
	}
	if err := pairDot(f4.M, "f4_m"); err != nil {
		return nil, err
	}
	if err := pairDot(f4.MPrime, "f4_mprime"); err != nil {
		return nil, err
	}
	return files, nil
}
