// Command tracedump records a full execution of the chain-composed
// counting protocol and writes it as JSON: every round's topology, every
// broadcast, every inbox. Useful for inspecting exactly what the leader
// saw — e.g. to diff the transcripts of an indistinguishable pair.
//
// Usage:
//
//	tracedump -n 13 -chain 2 [-o trace.json] [-twin] [-timeout 30s]
//
// Recording honors SIGINT/SIGTERM and -timeout.
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON metrics snapshot on exit, -pprof <addr> serves live /debug/pprof,
// /debug/vars, and /metrics. Without either flag the instrumentation is
// disabled and costs nothing.
//
// With -twin the network runs the size-(n+1) twin schedule M' instead; the
// leader transcript is byte-identical through the indistinguishability
// horizon (compare two dumps to see it).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"anondyn/internal/chainnet"
	"anondyn/internal/cli"
	"anondyn/internal/core"
)

func main() {
	cli.Main("tracedump", run)
}

func run(ctx context.Context, args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("tracedump", flag.ContinueOnError)
	n := fs.Int("n", 13, "number of counted nodes")
	chainLen := fs.Int("chain", 0, "static chain length")
	outPath := fs.String("o", "", "output file (default: stdout)")
	twin := fs.Bool("twin", false, "run the size-(n+1) twin schedule M' instead of M")
	rounds := fs.Int("rounds", 0, "rounds to record (default: the indistinguishability horizon)")
	timeout := fs.Duration("timeout", 0, "abort recording after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *n < 1 {
		return cli.Usagef("-n must be >= 1, got %d", *n)
	}
	if *chainLen < 0 {
		return cli.Usagef("-chain must be >= 0, got %d", *chainLen)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return err
	}
	pair, err := core.WorstCasePair(*n)
	if err != nil {
		return err
	}
	schedule := pair.M
	if *twin {
		schedule = pair.MPrime
	}
	nw, err := chainnet.BuildFromSchedule(schedule, *chainLen)
	if err != nil {
		return err
	}
	record := *rounds
	if record <= 0 {
		record = pair.Rounds
	}
	tr, err := chainnet.RecordTrace(nw, record)
	if err != nil {
		return err
	}
	data, err := tr.ToJSON()
	if err != nil {
		return err
	}
	if *outPath == "" {
		_, err = stdout.Write(append(data, '\n'))
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d rounds (%d bytes) to %s\n", len(tr.Rounds), len(data), *outPath)
	return nil
}
