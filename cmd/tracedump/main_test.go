package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/trace"
)

func TestDumpToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-n", "4", "-chain", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.FromJSON([]byte(sb.String()))
	if err != nil {
		t.Fatalf("output is not a valid trace: %v", err)
	}
	if tr.N != 1+1+2+4 {
		t.Fatalf("trace N = %d, want 8", tr.N)
	}
	if len(tr.Rounds) != 2 { // indistinguishability horizon for n=4
		t.Fatalf("rounds = %d, want 2", len(tr.Rounds))
	}
}

func TestDumpToFileAndTwinIndistinguishable(t *testing.T) {
	dir := t.TempDir()
	pathM := filepath.Join(dir, "m.json")
	pathT := filepath.Join(dir, "t.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-n", "13", "-o", pathM}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-n", "13", "-twin", "-o", pathT}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Fatalf("missing confirmation: %s", sb.String())
	}
	load := func(path string) *trace.Trace {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.FromJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	m := load(pathM)
	tw := load(pathT)
	if tw.N != m.N+1 {
		t.Fatalf("twin has %d nodes, original %d", tw.N, m.N)
	}
	// The leader's transcripts are identical through the horizon even
	// though the networks have different sizes.
	eq, err := trace.TranscriptsEqual(m, tw, 0, len(m.Rounds))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("leader transcripts differ: the twin is distinguishable")
	}
}

func TestDumpCustomRounds(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-n", "4", "-rounds", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.FromJSON([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rounds) != 5 {
		t.Fatalf("rounds = %d, want 5", len(tr.Rounds))
	}
}

func TestDumpErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-n", "0"},
		{"-chain", "-1"},
		{"-bogus"},
	} {
		if err := run(context.Background(), args, &sb); err == nil {
			t.Fatalf("args %v should error", args)
		}
	}
}
