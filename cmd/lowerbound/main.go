// Command lowerbound prints the indistinguishability table of Theorem 1:
// for each network size n it reports the exact number of rounds the
// worst-case adversary sustains two indistinguishable networks of sizes n
// and n+1, and (with -verify) constructs and checks the adversarial pair.
//
// Usage:
//
//	lowerbound [-max 1000] [-verify] [-all] [-timeout 30s]
//
// The table honors SIGINT/SIGTERM and -timeout, stopping between sizes.
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
//
// The shared observability flags are accepted too: -metrics <file> writes
// a JSON metrics snapshot on exit, -pprof <addr> serves live /debug/pprof,
// /debug/vars, and /metrics. Without either flag the instrumentation is
// disabled and costs nothing.
//
// By default only the kernel-threshold sizes (3^t - 1)/2 and their
// neighbors are printed; -all prints every size up to -max.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"anondyn/internal/cli"
	"anondyn/internal/core"
)

func main() {
	cli.Main("lowerbound", run)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	maxN := fs.Int("max", 1000, "largest size to tabulate")
	verify := fs.Bool("verify", false, "construct and verify the adversarial pair for each printed size")
	all := fs.Bool("all", false, "print every size, not just the threshold neighborhood")
	csv := fs.Bool("csv", false, "emit the series as CSV (n,indistinguishable_rounds,count_bound)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	obsCfg := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *maxN < 1 {
		return cli.Usagef("-max must be >= 1, got %d", *maxN)
	}
	if err := obsCfg.Start(); err != nil {
		return err
	}
	defer func() { err = obsCfg.Finish(err) }()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	sizes := selectSizes(*maxN, *all)
	if *csv {
		fmt.Fprintln(out, "n,indistinguishable_rounds,count_bound")
		for _, n := range sizes {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("stopped before n=%d: %w", n, err)
			}
			fmt.Fprintf(out, "%d,%d,%d\n", n, core.MaxIndistinguishableRounds(n), core.LowerBoundRounds(n))
		}
		return nil
	}
	fmt.Fprintf(out, "%8s  %22s  %16s", "n", "indist. rounds T(n)", "count bound T+1")
	if *verify {
		fmt.Fprintf(out, "  %s", "pair verified")
	}
	fmt.Fprintln(out)
	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped before n=%d: %w", n, err)
		}
		t := core.MaxIndistinguishableRounds(n)
		fmt.Fprintf(out, "%8d  %22d  %16d", n, t, core.LowerBoundRounds(n))
		if *verify {
			status := "ok"
			pair, err := core.WorstCasePair(n)
			if err != nil {
				status = "ERROR: " + err.Error()
			} else if err := pair.Verify(); err != nil {
				status = "FAILED: " + err.Error()
			} else if ext, err := pair.Extend(2); err != nil {
				status = "ERROR: " + err.Error()
			} else if div, found := ext.FirstDivergence(); !found || div != t+1 {
				status = fmt.Sprintf("FAILED: diverged at %d, want %d", div, t+1)
			}
			fmt.Fprintf(out, "  %s", status)
			if status != "ok" {
				fmt.Fprintln(out)
				return fmt.Errorf("verification failed at n=%d", n)
			}
		}
		fmt.Fprintln(out)
	}
	return nil
}

// selectSizes picks the sizes to print: all of 1..max, or the thresholds
// (3^t-1)/2 with their immediate neighbors.
func selectSizes(max int, all bool) []int {
	if all {
		out := make([]int, 0, max)
		for n := 1; n <= max; n++ {
			out = append(out, n)
		}
		return out
	}
	seen := map[int]bool{}
	var out []int
	add := func(n int) {
		if n >= 1 && n <= max && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(1)
	add(2)
	for t := 1; ; t++ {
		th := core.MinSizeForRounds(t)
		if th > max {
			break
		}
		add(th - 1)
		add(th)
		add(th + 1)
	}
	add(max)
	return out
}
