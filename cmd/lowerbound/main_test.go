package main

import (
	"context"
	"strings"
	"testing"
)

func TestTableThresholds(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-max", "121"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Thresholds 1, 4, 13, 40, 121 and their neighbors must appear.
	for _, want := range []string{"       1  ", "       4  ", "      13  ", "      40  ", "     121  "} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableVerify(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-max", "41", "-verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "pair verified") {
		t.Fatalf("missing verification column:\n%s", out)
	}
	if strings.Contains(out, "FAILED") || strings.Contains(out, "ERROR") {
		t.Fatalf("verification failed:\n%s", out)
	}
}

func TestTableAll(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-max", "10", "-all"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Header plus exactly 10 rows.
	lines := strings.Count(strings.TrimRight(sb.String(), "\n"), "\n") + 1
	if lines != 11 {
		t.Fatalf("expected 11 lines, got %d:\n%s", lines, sb.String())
	}
}

func TestBadArgs(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-max", "0"}, &sb); err == nil {
		t.Fatal("max=0 should error")
	}
	if err := run(context.Background(), []string{"-zzz"}, &sb); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestSelectSizesDedup(t *testing.T) {
	sizes := selectSizes(14, false)
	seen := map[int]bool{}
	for _, n := range sizes {
		if seen[n] {
			t.Fatalf("duplicate size %d in %v", n, sizes)
		}
		seen[n] = true
		if n < 1 || n > 14 {
			t.Fatalf("size %d out of range in %v", n, sizes)
		}
	}
	if !seen[13] || !seen[14] {
		t.Fatalf("thresholds missing from %v", sizes)
	}
}

func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-max", "13", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "n,indistinguishable_rounds,count_bound\n") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "13,3,4") {
		t.Fatalf("missing threshold row:\n%s", out)
	}
}
