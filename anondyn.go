// Package anondyn is a library for studying the cost of anonymity in
// dynamic networks, reproducing Di Luna and Baldoni, "Investigating the
// Cost of Anonymity on Dynamic Networks" (brief announcement at PODC 2015).
//
// The package is a thin facade over the implementation packages:
//
//   - internal/graph, internal/dynet: graphs, dynamic graphs, flooding,
//     dynamic diameter, persistent-distance classes 𝒢(PD)_h;
//   - internal/runtime: synchronous anonymous-broadcast execution engines
//     (sequential and goroutine-per-node), both context-aware: a run can be
//     canceled between rounds via RunSequentialCtx/RunConcurrentCtx, bounded
//     per round with Config.RoundDeadline, and a panicking process is
//     isolated and surfaced as a *ProcessPanicError instead of crashing the
//     program;
//   - internal/multigraph: the ℳ(DBL)ₖ dynamic bipartite labeled
//     multigraphs and the Lemma 1 transformation to 𝒢(PD)₂;
//   - internal/linalg, internal/kernel: the exact linear algebra behind
//     Lemmas 2-4 and the optimal leader-state count solver;
//   - internal/core: the lower bound, the worst-case adversary, and the
//     matching counting algorithm;
//   - internal/counting, internal/dissemination: baseline protocols
//     (star counting, the degree-oracle O(1) counter, push-sum, flooding
//     and token forwarding);
//   - internal/sweep: the experiment-campaign engine — declarative specs
//     expanded into independent jobs, a sharded work-stealing worker pool
//     with per-job deterministic seeds, and an append-only JSONL journal
//     that makes killed campaigns resumable (cmd/sweep is its CLI);
//   - internal/experiments, internal/figures: the reproduction harness.
//
// The quickest tour:
//
//	wc, _ := anondyn.WorstCaseAdversary(40)      // hardest network, |W|=40
//	res, _ := anondyn.CountOnMultigraph(wc.Schedule, 16)
//	fmt.Println(res.Rounds == anondyn.LowerBoundRounds(40)) // true
package anondyn

import (
	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
)

// Re-exported types: see the originating packages for full documentation.
type (
	// Dynamic is a dynamic graph: one topology snapshot per round.
	Dynamic = dynet.Dynamic
	// Multigraph is a dynamic bipartite labeled multigraph in ℳ(DBL)ₖ.
	Multigraph = multigraph.Multigraph
	// LeaderView is the leader's complete knowledge after a number of
	// rounds.
	LeaderView = multigraph.LeaderView
	// Pair is a Lemma 5 adversarial pair of indistinguishable networks.
	Pair = core.Pair
	// CountResult is the output of a counting run.
	CountResult = core.CountResult
	// Interval is the set of network sizes consistent with a leader view.
	Interval = kernel.Interval
	// WorstCaseNetwork is the worst-case 𝒢(PD)₂ network for a given size.
	WorstCaseNetwork = core.WorstCaseNetwork
	// ProcessPanicError reports a process that panicked during a run; the
	// engines recover it, abort the run, and return it instead of crashing.
	ProcessPanicError = runtime.ProcessPanicError
	// RoundDeadlineError reports a round that exceeded Config.RoundDeadline.
	RoundDeadlineError = runtime.RoundDeadlineError
)

// LowerBoundRounds returns the exact counting lower bound for a network of
// n anonymous nodes: ⌊log₃(2n+1)⌋ + 1 rounds (Theorems 1-2).
func LowerBoundRounds(n int) int { return core.LowerBoundRounds(n) }

// MaxIndistinguishableRounds returns how long the worst-case adversary can
// keep sizes n and n+1 indistinguishable: ⌊log₃(2n+1)⌋ completed rounds.
func MaxIndistinguishableRounds(n int) int { return core.MaxIndistinguishableRounds(n) }

// WorstCasePair constructs the Lemma 5 adversarial pair for size n.
func WorstCasePair(n int) (*Pair, error) { return core.WorstCasePair(n) }

// WorstCaseAdversary builds the worst-case 𝒢(PD)₂ dynamic network for n
// counted nodes.
func WorstCaseAdversary(n int) (*WorstCaseNetwork, error) { return core.WorstCaseAdversary(n) }

// CountOnMultigraph runs the optimal leader-state counter on a ℳ(DBL)₂
// multigraph, terminating as soon as the count is uniquely determined.
func CountOnMultigraph(m *Multigraph, maxRounds int) (CountResult, error) {
	return core.CountOnMultigraph(m, maxRounds)
}

// SolveCountInterval computes the exact set of network sizes consistent
// with a leader view — the leader's residual uncertainty.
func SolveCountInterval(view LeaderView) (Interval, error) {
	return kernel.SolveCountInterval(view)
}
